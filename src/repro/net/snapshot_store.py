"""Remote snapshot tier: schedulers on different hosts sharing one memo tier.

:class:`RemoteSnapshotStore` gives the reconstruction service's
:class:`~repro.service.scheduler.SharedMemoService` a cross-host backing:
instead of holding the accumulated database tier in process memory, the
scheduler pushes each finished job's tier to a
:class:`~repro.net.server.MemoServerDaemon` (which merges it,
partition-level union) and pulls the merged tier to seed the next job.  Two
beamline hosts pointed at the same daemon therefore warm-start from each
other's scans, and the daemon's own on-disk persistence makes the tier
survive every process involved.

The store is fail-open by default: an unreachable daemon makes ``pull``
return ``None`` (jobs start cold) and ``push`` return ``False`` (the tier
update is dropped) — scheduling never fails because the memo tier did.
Semantic rejections (tau / encoder mismatch against the daemon) still
raise, exactly like the in-process seed path.
"""

from __future__ import annotations

import logging

from ..core.memo_engine import memo_state_partitions
from .client import RemoteMemoClient

__all__ = ["RemoteSnapshotStore"]

log = logging.getLogger("repro.net.snapshot_store")


class RemoteSnapshotStore:
    """Push/pull memo-state trees against a memo server daemon."""

    def __init__(
        self,
        address,
        fail_open: bool = True,
        client: RemoteMemoClient | None = None,
        client_name: str = "snapshot-store",
    ) -> None:
        self._client = client if client is not None else RemoteMemoClient(
            address, fail_open=fail_open, client_name=client_name
        )
        self.address = self._client.address

    @property
    def connected(self) -> bool:
        return self._client.connected

    @property
    def net_stats(self):
        return self._client.net_stats

    def pull(self) -> dict | None:
        """The daemon's merged tier, or ``None`` when it is cold or
        unreachable (both mean: start this job cold)."""
        tree = self._client.state_dict()
        if not memo_state_partitions(tree) and not tree.get("encoder_state"):
            return None
        return tree

    def push(self, tree: dict) -> bool:
        """Merge one finished job's tier into the daemon; False when the
        daemon is unreachable (fail-open drop)."""
        return self._client.push_state(tree)

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "RemoteSnapshotStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
