"""Remote snapshot tier: schedulers on different hosts sharing one memo tier.

:class:`RemoteSnapshotStore` gives the reconstruction service's
:class:`~repro.service.scheduler.SharedMemoService` a cross-host backing:
instead of holding the accumulated database tier in process memory, the
scheduler pushes each finished job's tier to a
:class:`~repro.net.server.MemoServerDaemon` (which merges it,
partition-level union) and pulls the merged tier to seed the next job.  Two
beamline hosts pointed at the same daemon therefore warm-start from each
other's scans, and the daemon's own on-disk persistence makes the tier
survive every process involved.  A comma-separated address list (or list of
addresses) backs the store with the replicated client instead — pushes fan
out, pulls fail over.

The store is fail-open by default: an unreachable daemon makes ``pull``
return ``None`` (jobs start cold) and ``push`` return ``False`` (the tier
update is dropped) — scheduling never fails because the memo tier did.
Unreachable is distinguished from genuinely cold, though: when the daemon
cannot be reached, ``pull`` retries under the store's
:class:`~repro.net.policy.RetryPolicy` (jittered backoff, bounded by the
policy deadline) before giving up, because seeding from a daemon that was
restarting costs seconds while a cold reconstruction costs the whole warm
fraction.  Semantic rejections (tau / encoder mismatch against the daemon)
still raise, exactly like the in-process seed path.
"""

from __future__ import annotations

import logging
import time

from ..core.memo_engine import memo_state_partitions
from .client import RemoteMemoClient
from .policy import RetryPolicy, seed_from_name

__all__ = ["RemoteSnapshotStore"]

log = logging.getLogger("repro.net.snapshot_store")


class RemoteSnapshotStore:
    """Push/pull memo-state trees against one or more memo server daemons."""

    def __init__(
        self,
        address,
        fail_open: bool = True,
        client=None,
        client_name: str = "snapshot-store",
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.retry_policy = retry_policy or RetryPolicy()
        if client is not None:
            self._client = client
        else:
            from .wire import parse_address_list

            addresses = parse_address_list(address)
            if len(addresses) > 1:
                from .replicated import ReplicatedMemoClient

                self._client = ReplicatedMemoClient(
                    addresses,
                    fail_open=fail_open,
                    client_name=client_name,
                    retry_policy=self.retry_policy,
                )
            else:
                self._client = RemoteMemoClient(
                    addresses[0],
                    fail_open=fail_open,
                    client_name=client_name,
                    retry_policy=self.retry_policy,
                )
        self.address = getattr(self._client, "address", None) or getattr(
            self._client, "addresses", None
        )
        self._backoff = self.retry_policy.backoff(seed_from_name(client_name))

    @property
    def connected(self) -> bool:
        return self._client.connected

    @property
    def net_stats(self):
        return self._client.net_stats

    def pull(self) -> dict | None:
        """The daemon's merged tier, or ``None`` when it is cold or stays
        unreachable past the retry policy (both mean: start this job cold).

        An *empty* tree from a connected daemon is trusted immediately —
        that daemon really is cold.  An empty tree while disconnected means
        the fail-open client papered over a transport failure, so the store
        backs off and retries before accepting a cold start."""
        policy = self.retry_policy
        deadline = time.monotonic() + policy.deadline_s
        self._backoff.reset()
        for attempt in range(policy.max_attempts):
            tree = self._client.state_dict()
            if memo_state_partitions(tree) or tree.get("encoder_state"):
                return tree
            if self._client.connected:
                return None  # genuinely cold tier, not a transport artifact
            delay = self._backoff.next_delay()
            if attempt + 1 >= policy.max_attempts or (
                time.monotonic() + delay >= deadline
            ):
                break
            log.debug(
                "snapshot pull found no reachable daemon, retrying in %.2fs",
                delay,
            )
            time.sleep(delay)
            self._client.reset_backoff()
        log.warning("snapshot pull gave up after %d attempts — seeding cold",
                    policy.max_attempts)
        return None

    def push(self, tree: dict) -> bool:
        """Merge one finished job's tier into the daemon; False when the
        daemon is unreachable (fail-open drop)."""
        return bool(self._client.push_state(tree))

    def close(self) -> None:
        self._client.close()

    def __enter__(self) -> "RemoteSnapshotStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
