"""Named dataset configurations: paper scale <-> simulation scale.

The paper evaluates on ``1K^3``, ``1.5K^3`` and ``2K^3`` volumes.  Numerics
run at a reduced simulation scale (the memoization behavior — similarity
evolution, hit rates, accuracy — is scale-faithful), while the cost model
replays timing at the paper dimensions.  ``n_chunks`` is kept equal between
the two scales' *relative* granularity: the paper's default chunk size 16 on
1K^3 gives 64 locations; the sim runs use proportionally many locations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.costmodel import ProblemDims
from ..lamino.geometry import LaminoGeometry
from ..lamino.phantoms import make_phantom
from ..lamino.projector import simulate_data

__all__ = ["DatasetSpec", "SMALL", "MEDIUM", "LARGE", "DATASETS", "build"]


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset at both scales."""

    name: str
    paper_n: int
    sim_n: int
    sim_chunk: int
    phantom: str = "brain"
    tilt_deg: float = 61.0
    noise: float = 0.05
    paper_chunks: int = 64

    @property
    def dims(self) -> ProblemDims:
        """Paper-scale dimensions for the cost model."""
        return ProblemDims(n=self.paper_n, n_chunks=self.paper_chunks)

    @property
    def geometry(self) -> LaminoGeometry:
        n = self.sim_n
        return LaminoGeometry(
            vol_shape=(n, n, n),
            n_angles=n,
            det_shape=(n, n),
            tilt_deg=self.tilt_deg,
        )


SMALL = DatasetSpec(name="1K", paper_n=1024, sim_n=32, sim_chunk=4)
MEDIUM = DatasetSpec(name="1.5K", paper_n=1536, sim_n=40, sim_chunk=4)
LARGE = DatasetSpec(name="2K", paper_n=2048, sim_n=48, sim_chunk=4)
DATASETS = {"small": SMALL, "medium": MEDIUM, "large": LARGE}


def build(spec: DatasetSpec, seed: int = 3) -> tuple[LaminoGeometry, np.ndarray, np.ndarray]:
    """Instantiate (geometry, ground-truth volume, noisy projections)."""
    geometry = spec.geometry
    truth = make_phantom(spec.phantom, geometry.vol_shape, seed=seed)
    data = simulate_data(truth, geometry, noise_level=spec.noise, seed=seed + 1)
    return geometry, truth, data
