"""One regenerator per table/figure of the paper's evaluation (Section 6).

Every ``fig*``/``tab*`` function reproduces the corresponding artifact's
rows/series: real scaled-down solver runs supply the numerics (hit traces,
accuracy, convergence, cache hit rates); the calibrated discrete-event
platform model replays traces at paper scale for all timing results.  Each
returns a result object with a ``report()`` string printing the same
quantities the paper plots.

``quick=True`` (the default used by tests) shrinks iteration counts; the
benchmarks run the fuller settings recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.costmodel import CostModel
from ..core.config import MemoConfig, MLRConfig, PipelineConfig
from ..core.memo_engine import MemoEvent, MemoizedExecutor
from ..core.mlr_solver import MLRSolver
from ..core.offload import (
    IterationSchedule,
    OffloadPlanner,
    greedy_offload,
    lru_offload,
)
from ..core.perfsim import (
    PipelinePerf,
    coalesce_comparison,
    memo_case_breakdown,
    simulate_iteration,
    simulate_pipeline,
)
from ..lamino.operators import LaminoOperators
from ..memio.variables import admm_variables
from ..solvers.admm import ADMMConfig, ADMMSolver
from ..solvers.metrics import accuracy
from . import report
from .datasets import DATASETS, SMALL, DatasetSpec, build

__all__ = [
    "fig02_memory_breakdown",
    "fig04_chunk_similarity",
    "fig08_overall",
    "fig09_cancellation",
    "fig10_memo_breakdown",
    "fig11_coalesce",
    "fig12_cache_hitrate",
    "fig13_offload",
    "fig14_scaling",
    "fig14_sharded",
    "fig15_bandwidth",
    "fig16_latency_cdf",
    "tab01_accuracy",
    "fig17_convergence",
    "fig18_pipeline_overlap",
    "fig_warmstart",
]

_DEFAULT_ADMM = dict(alpha=1e-3, rho=0.5, n_inner=4, step_max_rel=4.0)


def _admm_config(n_outer: int) -> ADMMConfig:
    return ADMMConfig(n_outer=n_outer, **_DEFAULT_ADMM)


def _memo_config(tau: float = 0.92, **over) -> MemoConfig:
    base = dict(
        tau=tau,
        warmup_iterations=2,
        index_train_min=8,
        index_clusters=4,
        index_nprobe=2,
    )
    base.update(over)
    return MemoConfig(**base)


def _run_mlr(spec: DatasetSpec, n_outer: int, tau: float = 0.92, seed: int = 3, **memo_over):
    geometry, truth, data = build(spec, seed=seed)
    ops = LaminoOperators(geometry)
    cfg = MLRConfig(chunk_size=spec.sim_chunk, memo=_memo_config(tau, **memo_over))
    solver = MLRSolver(geometry, cfg, admm=_admm_config(n_outer), ops=ops)
    result = solver.reconstruct(data)
    return geometry, truth, data, ops, solver, result


def _steady_trace(events: list[MemoEvent], outer: int) -> list[MemoEvent]:
    return [ev for ev in events if ev.outer == outer]


# ---------------------------------------------------------------------------
# Figure 2 — memory breakdown and LSP dominance
# ---------------------------------------------------------------------------


@dataclass
class MemoryBreakdownResult:
    variable_bytes: dict[str, int]
    phase_seconds: dict[str, float]

    @property
    def total_bytes(self) -> int:
        return sum(self.variable_bytes.values())

    @property
    def lsp_fraction(self) -> float:
        total = sum(self.phase_seconds.values())
        return self.phase_seconds["lsp"] / total if total else 0.0

    def report(self) -> str:
        rows = [
            [name, nbytes / 2**30, 100.0 * nbytes / self.total_bytes]
            for name, nbytes in sorted(
                self.variable_bytes.items(), key=lambda kv: -kv[1]
            )
        ]
        t1 = report.table(["variable", "GiB", "% of total"], rows, "Figure 2: CPU memory")
        rows2 = [[k, v] for k, v in self.phase_seconds.items()]
        t2 = report.table(
            ["phase", "seconds"], rows2,
            f"Figure 2: phase times (LSP fraction = {self.lsp_fraction:.2f})",
        )
        return t1 + "\n\n" + t2


def fig02_memory_breakdown(spec: DatasetSpec = DATASETS["medium"]) -> MemoryBreakdownResult:
    variables = admm_variables(spec.paper_n)
    perf = simulate_iteration(spec.dims, n_gpus=1, variant="alg1", n_inner=4)
    return MemoryBreakdownResult(
        variable_bytes={k: v.nbytes for k, v in variables.items()},
        phase_seconds=dict(perf.phase_durations),
    )


# ---------------------------------------------------------------------------
# Figure 4 — chunk similarity across iterations
# ---------------------------------------------------------------------------


@dataclass
class SimilarityCensusResult:
    counts: dict[str, list[int]]  # location label -> similar-prior counts/iter
    tau: float

    def report(self) -> str:
        rows = []
        n_iter = max(len(v) for v in self.counts.values())
        for it in range(n_iter):
            rows.append(
                [it] + [v[it] if it < len(v) else "" for v in self.counts.values()]
            )
        return report.table(
            ["iteration"] + list(self.counts),
            rows,
            f"Figure 4: tau-similar prior chunks per location (tau={self.tau})",
        )


def fig04_chunk_similarity(
    spec: DatasetSpec = SMALL, n_outer: int = 40, tau: float = 0.93, quick: bool = True
) -> SimilarityCensusResult:
    if quick:
        n_outer = min(n_outer, 24)
    geometry, truth, data = build(spec)
    ops = LaminoOperators(geometry)
    memo = _memo_config(tau, track_similarity_census=True, warmup_iterations=10_000)
    ex = MemoizedExecutor(ops, config=memo, chunk_size=2)
    ADMMSolver(ops, _admm_config(n_outer), executor=ex).run(data)
    census = ex.similarity_census("Fu2D", tau=tau)
    locations = sorted(census)
    picks = {
        "top": census[locations[0]],
        "middle": census[locations[len(locations) // 2]],
        "bottom": census[locations[-1]],
    }
    # census is per op call (n_inner per outer); keep one sample per outer
    n_inner = _DEFAULT_ADMM["n_inner"]
    picks = {k: v[::n_inner] for k, v in picks.items()}
    return SimilarityCensusResult(counts=picks, tau=tau)


# ---------------------------------------------------------------------------
# Figure 8 — overall performance on three datasets
# ---------------------------------------------------------------------------


@dataclass
class OverallPerfResult:
    rows: list[list]  # dataset, original s, mLR s, normalized

    @property
    def mean_improvement(self) -> float:
        norms = [r[3] for r in self.rows]
        return 1.0 - sum(norms) / len(norms)

    def report(self) -> str:
        t = report.table(
            ["dataset", "original (s)", "mLR (s)", "normalized"],
            self.rows,
            "Figure 8: overall performance (60-iteration runtime)",
        )
        return t + f"\nmean improvement: {100 * self.mean_improvement:.1f}%"


def fig08_overall(
    n_outer: int = 60, sim_outer: int = 16, quick: bool = True
) -> OverallPerfResult:
    if quick:
        sim_outer = min(sim_outer, 10)
    rows = []
    for key in ("small", "medium", "large"):
        spec = DATASETS[key]
        *_, result = _run_mlr(spec, sim_outer)
        dims = spec.dims
        orig_iter = simulate_iteration(dims, variant="alg1", n_inner=4).iteration_time
        # replay each simulated outer iteration's trace; extrapolate the
        # steady state (last iteration) over the remaining outer iterations
        mlr_total = 0.0
        db_keys = 1
        for outer in range(sim_outer):
            trace = _steady_trace(result.events, outer)
            perf = simulate_iteration(
                dims, variant="canc_fused", n_inner=4, trace=trace, db_keys=max(db_keys, 1)
            )
            mlr_total += perf.iteration_time
            db_keys += sum(1 for ev in trace if ev.case == "miss")
        steady = simulate_iteration(
            dims,
            variant="canc_fused",
            n_inner=4,
            trace=_steady_trace(result.events, sim_outer - 1),
            db_keys=db_keys,
        ).iteration_time
        mlr_total += steady * (n_outer - sim_outer)
        orig_total = orig_iter * n_outer
        rows.append(
            [spec.name, orig_total, mlr_total, mlr_total / orig_total]
        )
    return OverallPerfResult(rows=rows)


# ---------------------------------------------------------------------------
# Figure 9 — operation cancellation and fusion
# ---------------------------------------------------------------------------


@dataclass
class CancellationResult:
    rows: list[list]  # dataset, workload, variant, seconds

    def report(self) -> str:
        return report.table(
            ["dataset", "workload", "variant", "seconds"],
            self.rows,
            "Figure 9: operation cancellation and fusion (FFT = 1 fwd+adj pass; "
            "LSP = 4 inner iterations)",
        )


def fig09_cancellation(quick: bool = True) -> CancellationResult:
    del quick  # DES-only: always cheap
    variants = [
        ("w/ cancellation w/ fusion", "canc_fused"),
        ("w/ cancellation w/o fusion", "canc"),
        ("w/o cancellation w/o fusion", "alg1"),
    ]
    rows = []
    for key in ("small", "medium"):
        dims = DATASETS[key].dims
        for label, variant in variants:
            fft = simulate_iteration(dims, variant=variant, n_inner=1).lsp_time
            lsp = simulate_iteration(dims, variant=variant, n_inner=4).lsp_time
            rows.append([DATASETS[key].name, "FFT", label, fft])
            rows.append([DATASETS[key].name, "LSP(4xFFT)", label, lsp])
    return CancellationResult(rows=rows)


# ---------------------------------------------------------------------------
# Figure 10 — memoization breakdown
# ---------------------------------------------------------------------------


@dataclass
class MemoBreakdownResult:
    data: dict[str, dict[str, dict[str, float]]]
    case_distribution: dict[str, float] | None = None

    def report(self) -> str:
        rows = []
        for op, cases in self.data.items():
            for case, comps in cases.items():
                rows.append(
                    [op, case, sum(comps.values())]
                    + [comps.get(k, 0.0) for k in (
                        "orig_comp", "key_encoding", "communication", "similarity_search", "others"
                    )]
                )
        t = report.table(
            ["op", "case", "total (s)", "orig_comp", "key_enc", "comm", "search", "others"],
            rows,
            "Figure 10: memoization breakdown per chunk-operation",
        )
        if self.case_distribution:
            t += "\ncase distribution: " + ", ".join(
                f"{k}={v:.0%}" for k, v in self.case_distribution.items()
            )
        return t


def fig10_memo_breakdown(
    spec: DatasetSpec = SMALL, sim_outer: int = 12, quick: bool = True
) -> MemoBreakdownResult:
    if quick:
        sim_outer = min(sim_outer, 8)
    data = memo_case_breakdown(spec.dims)
    *_, result = _run_mlr(spec, sim_outer)
    counts = {k: v for k, v in result.case_counts.items() if k != "direct"}
    total = sum(counts.values()) or 1
    dist = {k: v / total for k, v in counts.items()}
    return MemoBreakdownResult(data=data, case_distribution=dist)


# ---------------------------------------------------------------------------
# Figure 11 — key coalescing
# ---------------------------------------------------------------------------


@dataclass
class CoalesceResult:
    per_key: dict[str, dict[str, float]]

    @property
    def improvement(self) -> float:
        w = sum(self.per_key["with"].values())
        wo = sum(self.per_key["without"].values())
        return 1.0 - w / wo if wo else 0.0

    def report(self) -> str:
        rows = [
            [k, v["communication"], v["similarity_search"], sum(v.values())]
            for k, v in self.per_key.items()
        ]
        t = report.table(
            ["mode", "communication (s/key)", "search (s/key)", "total"],
            rows,
            "Figure 11: key coalescing",
        )
        return t + f"\nimprovement: {100 * self.improvement:.0f}%"


def fig11_coalesce(spec: DatasetSpec = SMALL) -> CoalesceResult:
    return CoalesceResult(per_key=coalesce_comparison(spec.dims))


# ---------------------------------------------------------------------------
# Figure 12 — private vs global cache hit rate
# ---------------------------------------------------------------------------


@dataclass
class CacheHitRateResult:
    private_series: list[tuple[int, float]]
    global_series: list[tuple[int, float]]
    private_comparisons: int
    global_comparisons: int

    @property
    def comparison_saving(self) -> float:
        if self.global_comparisons == 0:
            return 0.0
        return 1.0 - self.private_comparisons / self.global_comparisons

    def report(self) -> str:
        gd = dict(self.global_series)
        rows = [
            [it, hr, gd.get(it, float("nan"))] for it, hr in self.private_series
        ]
        t = report.table(
            ["iteration", "private hit rate", "global hit rate"],
            rows,
            "Figure 12: Fu2D cache hit rate",
        )
        return t + (
            f"\nsimilarity comparisons: private={self.private_comparisons} "
            f"global={self.global_comparisons} "
            f"(saving {100 * self.comparison_saving:.0f}%)"
        )


def fig12_cache_hitrate(
    spec: DatasetSpec = SMALL, n_outer: int = 30, quick: bool = True
) -> CacheHitRateResult:
    if quick:
        n_outer = min(n_outer, 16)
    stats = {}
    for mode in ("private", "global"):
        _, _, _, _, solver, _result = _run_mlr(spec, n_outer, cache=mode)
        stats[mode] = solver.executor.cache_stats("Fu2D")
    return CacheHitRateResult(
        private_series=stats["private"].hit_rate_series(),
        global_series=stats["global"].hit_rate_series(),
        private_comparisons=stats["private"].comparisons,
        global_comparisons=stats["global"].comparisons,
    )


# ---------------------------------------------------------------------------
# Figure 13 — ADMM-Offload
# ---------------------------------------------------------------------------


@dataclass
class OffloadResult:
    outcomes: dict[str, object]  # strategy -> PlanOutcome

    def report(self) -> str:
        rows = []
        for name, o in self.outcomes.items():
            rows.append(
                [
                    name,
                    o.peak_bytes / 2**30,
                    100 * o.memory_saving,
                    100 * o.time_loss,
                    o.mt if o.mt != float("inf") else "inf",
                    ",".join(o.offloaded) or "-",
                ]
            )
        return report.table(
            ["strategy", "peak RSS (GiB)", "mem saving %", "perf loss %", "MT", "offloaded"],
            rows,
            "Figure 13: ADMM-Offload vs baselines",
        )


def fig13_offload(spec: DatasetSpec = SMALL) -> OffloadResult:
    cost = CostModel()
    sched = IterationSchedule.from_cost_model(spec.dims, cost)
    planner = OffloadPlanner(sched, cost)
    base = planner.evaluate(())
    best = planner.best_plan()
    greedy = greedy_offload(sched, cost)
    lru = lru_offload(sched, cost)
    return OffloadResult(
        outcomes={
            "ADMM (no offload)": base,
            "ADMM greedy offload": greedy,
            "ADMM LRU offload": lru,
            "ADMM-Offload": best,
        }
    )


# ---------------------------------------------------------------------------
# Figures 14/15/16 — scalability, bandwidth, latency
# ---------------------------------------------------------------------------


@dataclass
class ScalingResult:
    gpu_counts: list[int]
    op_times: dict[str, list[float]]
    overall: list[float]
    nic_utilization: list[float]
    latencies: dict[int, list[float]]

    def report(self) -> str:
        rows = [
            [g] + [self.op_times[op][i] for op in self.op_times] + [self.overall[i]]
            for i, g in enumerate(self.gpu_counts)
        ]
        t = report.table(
            ["GPUs"] + list(self.op_times) + ["overall (s)"],
            rows,
            "Figure 14: scalability over GPUs",
        )
        rows2 = [
            [g, 100 * u] for g, u in zip(self.gpu_counts, self.nic_utilization)
        ]
        t += "\n\n" + report.table(
            ["GPUs", "bandwidth utilization %"], rows2, "Figure 15"
        )
        for g in self.gpu_counts:
            lat = self.latencies[g]
            frac = float(np.mean([v > 0.1 for v in lat])) if lat else 0.0
            t += "\n" + report.table(
                ["quantile", "latency (s)"],
                report.cdf_rows(lat),
                f"Figure 16: query latency CDF at {g} GPUs (>100ms: {frac:.0%})",
            )
        return t


def fig14_scaling(
    spec: DatasetSpec = SMALL,
    gpu_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    sim_outer: int = 12,
    n_outer: int = 60,
    quick: bool = True,
) -> ScalingResult:
    if quick:
        sim_outer = min(sim_outer, 8)
    *_, result = _run_mlr(spec, sim_outer)
    trace = _steady_trace(result.events, sim_outer - 1)
    db_keys = sum(1 for ev in result.events if ev.case == "miss")
    op_times: dict[str, list[float]] = {op: [] for op in ("Fu1D", "Fu1D*", "Fu2D", "Fu2D*")}
    overall, util, lats = [], [], {}
    for g in gpu_counts:
        perf = simulate_iteration(
            spec.dims, n_gpus=g, variant="canc_fused", n_inner=4,
            trace=trace, db_keys=max(db_keys, 1),
        )
        for op in op_times:
            op_times[op].append(perf.op_phase_times.get(op, 0.0))
        overall.append(perf.iteration_time * n_outer)
        util.append(perf.memory_nic_utilization())
        lats[g] = perf.query_latencies
    return ScalingResult(
        gpu_counts=list(gpu_counts),
        op_times=op_times,
        overall=overall,
        nic_utilization=util,
        latencies=lats,
    )


@dataclass
class ShardedScalingResult:
    """Figure 14 companion: the workers x shards scaling surface.

    The numeric run is executed once with the distributed executor (private
    caches make the numerics independent of the worker/shard counts); its
    per-worker and per-shard statistics are reported directly, and its
    worker-tagged steady-state trace is replayed on the DES across the
    (workers, shards) grid.
    """

    n_workers: int
    n_shards: int
    shard_hit_rates: list[float]
    shard_queries: list[int]
    shard_entries: list[int]
    worker_keys: list[int]
    worker_messages: list[int]
    worker_mean_batch: list[float]
    case_counts: dict[str, int]
    grid_workers: list[int]
    grid_shards: list[int]
    lsp_times: dict[tuple[int, int], float]
    query_p50: dict[tuple[int, int], float]

    def speedup(self, workers: int, shards: int) -> float:
        base = self.lsp_times[(self.grid_workers[0], self.grid_shards[0])]
        return base / self.lsp_times[(workers, shards)]

    def report(self) -> str:
        rows = [
            [s, self.shard_queries[s], self.shard_hit_rates[s], self.shard_entries[s]]
            for s in range(self.n_shards)
        ]
        t = report.table(
            ["shard", "queries", "hit rate", "entries"],
            rows,
            f"Sharded memoization service ({self.n_workers} workers x "
            f"{self.n_shards} shards, numeric run)",
        )
        rows2 = [
            [w, self.worker_keys[w], self.worker_messages[w], self.worker_mean_batch[w]]
            for w in range(self.n_workers)
        ]
        t += "\n\n" + report.table(
            ["worker", "keys", "messages", "mean batch"],
            rows2,
            "Per-worker key coalescing",
        )
        rows3 = [
            [w] + [self.lsp_times[(w, s)] for s in self.grid_shards]
            for w in self.grid_workers
        ]
        t += "\n\n" + report.table(
            ["workers \\ shards"] + [str(s) for s in self.grid_shards],
            rows3,
            "Figure 14 (sharded): LSP seconds over the workers x shards grid",
        )
        return t


def fig14_sharded(
    spec: DatasetSpec = SMALL,
    n_workers: int = 4,
    n_shards: int = 2,
    grid_workers: tuple[int, ...] = (1, 2, 4, 8, 16),
    grid_shards: tuple[int, ...] = (1, 2, 4),
    sim_outer: int = 12,
    db_keys: int = 4_000_000,
    quick: bool = True,
) -> ShardedScalingResult:
    """The distributed-memoization scaling study (paper Sections 4.3/5.2).

    Runs the real (scaled-down) reconstruction on a
    :class:`~repro.core.distributed.DistributedMemoizedExecutor` with
    ``n_workers x n_shards``, then replays its worker-tagged steady trace on
    the DES over the ``grid_workers x grid_shards`` surface.  ``db_keys`` is
    the modeled beamline-scale key population — large enough that index
    search time is visible next to the wire time, which is what sharding
    attacks.
    """
    if quick:
        sim_outer = min(sim_outer, 8)
    geometry, truth, data = build(spec)
    ops = LaminoOperators(geometry)
    cfg = MLRConfig(
        chunk_size=spec.sim_chunk,
        memo=_memo_config(),
        n_workers=n_workers,
        n_shards=n_shards,
    )
    solver = MLRSolver(geometry, cfg, admm=_admm_config(sim_outer), ops=ops)
    result = solver.reconstruct(data)
    ex = solver.executor

    shard_stats = ex.per_shard_db_stats()
    coalesce = ex.per_worker_coalesce_stats()
    trace = _steady_trace(result.events, sim_outer - 1)

    lsp_times: dict[tuple[int, int], float] = {}
    p50: dict[tuple[int, int], float] = {}
    for w in grid_workers:
        for s in grid_shards:
            perf = simulate_iteration(
                spec.dims, n_gpus=w, variant="canc_fused", n_inner=4,
                trace=trace, db_keys=db_keys, n_shards=s,
                trace_by_location=True,
            )
            lsp_times[(w, s)] = perf.lsp_time
            lat = sorted(perf.query_latencies)
            p50[(w, s)] = lat[len(lat) // 2] if lat else 0.0

    return ShardedScalingResult(
        n_workers=n_workers,
        n_shards=n_shards,
        shard_hit_rates=[st.hit_rate for st in shard_stats],
        shard_queries=[st.queries for st in shard_stats],
        shard_entries=ex.router.per_shard_entries(),
        worker_keys=[c.keys for c in coalesce],
        worker_messages=[c.messages for c in coalesce],
        worker_mean_batch=[c.mean_batch for c in coalesce],
        case_counts=dict(result.case_counts),
        grid_workers=list(grid_workers),
        grid_shards=list(grid_shards),
        lsp_times=lsp_times,
        query_p50=p50,
    )


def fig15_bandwidth(**kwargs) -> ScalingResult:
    """Figure 15 shares the Figure 14 sweep."""
    return fig14_scaling(**kwargs)


def fig16_latency_cdf(**kwargs) -> ScalingResult:
    """Figure 16 shares the Figure 14 sweep."""
    return fig14_scaling(**kwargs)


# ---------------------------------------------------------------------------
# Table 1 + Figure 17 — accuracy and convergence
# ---------------------------------------------------------------------------


@dataclass
class AccuracyResult:
    taus: list[float]
    accuracies: list[float]
    memo_fractions: list[float]

    def report(self) -> str:
        rows = [
            [t, a, m]
            for t, a, m in zip(self.taus, self.accuracies, self.memo_fractions)
        ]
        return report.table(
            ["tau", "accuracy", "memoized fraction"],
            rows,
            "Table 1: impact of memoization on reconstruction accuracy",
        )


def tab01_accuracy(
    spec: DatasetSpec = SMALL,
    taus: tuple[float, ...] = (0.86, 0.88, 0.90, 0.92, 0.94, 0.96),
    n_outer: int = 60,
    quick: bool = True,
) -> AccuracyResult:
    if quick:
        n_outer = min(n_outer, 20)
        taus = tuple(taus[::2])
    geometry, truth, data = build(spec)
    ops = LaminoOperators(geometry)
    ref = ADMMSolver(ops, _admm_config(n_outer)).run(data)
    accs, memos = [], []
    for tau in taus:
        cfg = MLRConfig(chunk_size=spec.sim_chunk, memo=_memo_config(tau))
        solver = MLRSolver(geometry, cfg, admm=_admm_config(n_outer), ops=ops)
        res = solver.reconstruct(data)
        accs.append(accuracy(ref.u.real, res.u.real))
        memos.append(res.memoized_fraction)
    return AccuracyResult(taus=list(taus), accuracies=accs, memo_fractions=memos)


# ---------------------------------------------------------------------------
# Figure 18 — streaming pipeline overlap
# ---------------------------------------------------------------------------


@dataclass
class PipelineOverlapResult:
    """Serial vs pipelined execution: functional bit-identity at simulation
    scale plus the overlapped-phase makespan surface at paper scale."""

    queue_depths: list[int]
    worker_counts: list[int]
    perfs: dict[tuple[int, int], PipelinePerf]  # (queue_depth, workers) -> perf
    io_time: float  # modeled per-chunk read + write seconds
    bitwise_identical: bool
    streaming_identical: bool
    pipeline_items: int
    read_backpressure: int  # producer blocks observed by the functional run
    case_counts: dict[str, int]

    @property
    def serial_time(self) -> float:
        return next(iter(self.perfs.values())).serial_time

    def speedup(self, queue_depth: int, workers: int) -> float:
        return self.perfs[(queue_depth, workers)].speedup

    def report(self) -> str:
        rows = []
        for (q, w), perf in sorted(self.perfs.items()):
            rows.append(
                [q, w, perf.pipelined_time, perf.speedup, perf.speedup_bound,
                 perf.fill_drain_time]
            )
        t = report.table(
            ["queue depth", "workers", "pipelined (s)", "speedup", "bound",
             "fill/drain (s)"],
            rows,
            f"Figure 18: pipelined sweep makespan (serial = "
            f"{self.serial_time:.3f} s, per-chunk I/O = {self.io_time * 1e3:.2f} ms)",
        )
        t += (
            f"\nfunctional run: pipelined == serial bit-for-bit: "
            f"{self.bitwise_identical}; streaming ingest == batch: "
            f"{self.streaming_identical}; {self.pipeline_items} chunk-ops "
            f"pipelined, {self.read_backpressure} reader backpressure stalls"
        )
        return t


def fig18_pipeline_overlap(
    spec: DatasetSpec = SMALL,
    queue_depths: tuple[int, ...] = (1, 2, 4),
    worker_counts: tuple[int, ...] = (1, 2, 4),
    sim_outer: int = 6,
    quick: bool = True,
) -> PipelineOverlapResult:
    """The streaming-pipeline study (overlapped read -> memoized compute ->
    write; :mod:`repro.pipeline`).

    The *functional* half runs the real solver twice — monolithic and
    ``pipeline=`` mode — and checks bit-identity, plus a streaming-ingest
    run where projections arrive block by block from a producer thread.
    The *modeled* half schedules one paper-scale sweep on the DES across
    the (queue depth, compute workers) grid, with SSD chunk reads/writes
    as the outer stages.
    """
    if quick:
        sim_outer = min(sim_outer, 4)

    # -- functional: serial vs pipelined vs streaming, bit for bit --------------
    geometry, truth, data = build(spec)
    ops = LaminoOperators(geometry)

    def make_solver(pipeline: PipelineConfig | None) -> MLRSolver:
        cfg = MLRConfig(
            chunk_size=spec.sim_chunk, memo=_memo_config(), pipeline=pipeline
        )
        return MLRSolver(geometry, cfg, admm=_admm_config(sim_outer), ops=ops)

    serial_result = make_solver(None).reconstruct(data)
    piped_solver = make_solver(PipelineConfig(queue_depth=2))
    piped_result = piped_solver.reconstruct(data)
    stats = piped_solver.executor.pipeline_stats()

    streaming_solver = make_solver(None)
    ingest = streaming_solver.make_ingest()

    from ..pipeline import QueueClosed

    def produce() -> None:
        block = max(1, spec.sim_chunk - 1)  # deliberately chunk-misaligned
        try:
            with ingest:
                for lo in range(0, geometry.data_shape[0], block):
                    ingest.push(data[lo:lo + block])
        except QueueClosed:
            pass  # the consumer died and tore the stream down

    import threading

    feeder = threading.Thread(target=produce)
    feeder.start()
    try:
        streaming_result = streaming_solver.reconstruct_streaming(ingest)
    finally:
        feeder.join()

    # -- modeled: the overlapped-phase surface at paper scale -------------------
    cost = CostModel()
    dims = spec.dims
    read = cost.chunk_read_time(dims)
    write = cost.chunk_write_time(dims)
    compute = cost.chunk_compute_time(dims)
    perfs = {
        (q, w): simulate_pipeline(
            dims.n_chunks, read, compute, write, queue_depth=q, n_workers=w
        )
        for q in queue_depths
        for w in worker_counts
    }

    return PipelineOverlapResult(
        queue_depths=list(queue_depths),
        worker_counts=list(worker_counts),
        perfs=perfs,
        io_time=read + write,
        bitwise_identical=bool(np.array_equal(serial_result.u, piped_result.u)),
        streaming_identical=bool(np.array_equal(serial_result.u, streaming_result.u)),
        pipeline_items=stats.items,
        read_backpressure=stats.read_queue.producer_blocks,
        case_counts=dict(piped_result.case_counts),
    )


@dataclass
class ConvergenceResult:
    loss_without: list[float]
    loss_with: list[float]

    def report(self) -> str:
        rows = [
            [i, a, b]
            for i, (a, b) in enumerate(zip(self.loss_without, self.loss_with))
        ]
        return report.table(
            ["iteration", "loss w/o memoization", "loss w/ memoization"],
            rows,
            "Figure 17: convergence with and without memoization",
        )


def fig17_convergence(
    spec: DatasetSpec = SMALL, n_outer: int = 60, tau: float = 0.92, quick: bool = True
) -> ConvergenceResult:
    if quick:
        n_outer = min(n_outer, 20)
    geometry, truth, data = build(spec)
    ops = LaminoOperators(geometry)

    # The memoized run's internal residuals are themselves approximated, so
    # both curves report the *true* loss of the iterate, evaluated with the
    # exact operators.
    import numpy as np

    from ..solvers.tv import tv_norm

    dhat = ops.f2d(np.ascontiguousarray(data, dtype=np.complex64))
    alpha = _DEFAULT_ADMM["alpha"]

    def true_loss(u: np.ndarray) -> float:
        r = ops.forward_freq(u) - dhat
        return 0.5 * float(np.vdot(r, r).real) + alpha * tv_norm(u)

    losses: dict[str, list[float]] = {"ref": [], "mlr": []}

    def cb(name):
        return lambda it, u, hist: losses[name].append(true_loss(u))

    ADMMSolver(ops, _admm_config(n_outer)).run(data, callback=cb("ref"))
    cfg = MLRConfig(chunk_size=spec.sim_chunk, memo=_memo_config(tau))
    solver = MLRSolver(geometry, cfg, admm=_admm_config(n_outer), ops=ops)
    solver.solver.run(data, callback=cb("mlr"))
    return ConvergenceResult(loss_without=losses["ref"], loss_with=losses["mlr"])


# ---------------------------------------------------------------------------
# Warm start — cross-job memoization through the reconstruction service
# ---------------------------------------------------------------------------


@dataclass
class WarmstartResult:
    """The cross-job experiment: repeated scans of one sample, reconstructed
    as service jobs over the scheduler's shared (persistable) memo tier."""

    job_rows: list[list]  # job, mode, queries, hits, hit rate, entries at start
    first_job_hit_rate: float
    cold_hit_rate: float  # second scan on a fresh database
    warm_hit_rate: float  # second scan warm-started from the first job's db
    snapshot_bit_identical: bool
    snapshot_partitions: int
    snapshot_nbytes: int

    @property
    def warm_gain(self) -> float:
        """Absolute db hit-rate gained by warm-starting the second scan."""
        return self.warm_hit_rate - self.cold_hit_rate

    def report(self) -> str:
        t = report.table(
            ["job", "mode", "db queries", "db hits", "hit rate", "entries at start"],
            self.job_rows,
            "Warm start: per-job memo-database traffic (deltas)",
        )
        lines = [
            t,
            "",
            f"second-scan hit rate: cold {self.cold_hit_rate:.3f} -> "
            f"warm {self.warm_hit_rate:.3f} (gain +{self.warm_gain:.3f})",
            f"snapshot: {self.snapshot_partitions} partitions, "
            f"{self.snapshot_nbytes / 1024:.1f} KiB on disk, "
            f"save->load query outcomes bit-identical: "
            f"{self.snapshot_bit_identical}",
        ]
        return "\n".join(lines)


def _outcomes_identical(a, b) -> bool:
    """Bit-exact equality of two query_batch outcome lists."""
    import numpy as np

    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if (
            x.similarity != y.similarity
            or x.matched_id != y.matched_id
            or x.n_entries != y.n_entries
            or (x.value is None) != (y.value is None)
            or x.stored_meta != y.stored_meta
        ):
            return False
        if x.value is not None and not (
            x.value.dtype == y.value.dtype
            and x.value.shape == y.value.shape
            and np.array_equal(x.value, y.value)
        ):
            return False
    return True


def _snapshot_proof(executor, snapshot_dir: str | None) -> tuple[bool, int, int]:
    """Persist ``executor``'s database tier, load it back, and probe every
    partition: the loaded database must answer ``query_batch`` on stored,
    perturbed and adversarial keys bit-identically to the live one.

    Returns ``(bit_identical, n_partitions, snapshot_nbytes)``.
    """
    import os
    import tempfile

    import numpy as np

    from ..core.memo_db import MemoDatabase
    from ..service.snapshot import load_memo_snapshot, save_memo_snapshot

    own_tmp = snapshot_dir is None
    path = tempfile.mkdtemp(prefix="mlr-snapshot-") if own_tmp else snapshot_dir
    try:
        save_memo_snapshot(path, executor)
        nbytes = sum(
            os.path.getsize(os.path.join(path, f)) for f in os.listdir(path)
        )
        loaded = {
            (p["op"], int(p["location"])): MemoDatabase.from_state(p["db"])
            for p in load_memo_snapshot(path)["partitions"]
        }
        rng = np.random.default_rng(0)
        identical = True
        for op, state in executor._state.items():
            for loc, live in state.dbs.items():
                probes = [k.copy() for k in live._keys.values()]
                probes += [k + rng.normal(0, 1e-3, k.shape).astype(np.float32)
                           for k in probes[:8]]
                probes.append(np.zeros(live.dim, dtype=np.float32))
                restored = loaded.pop((op, int(loc)))
                if not _outcomes_identical(
                    live.query_batch(probes), restored.query_batch(probes)
                ):
                    identical = False
        n_parts = sum(len(s.dbs) for s in executor._state.values())
        identical = identical and not loaded  # no extra partitions either
        return identical, n_parts, nbytes
    finally:
        if own_tmp:
            import shutil

            shutil.rmtree(path, ignore_errors=True)


def fig_warmstart(
    spec: DatasetSpec = SMALL,
    sim_outer: int = 6,
    tau: float = 0.9,
    quick: bool = True,
    snapshot_dir: str | None = None,
) -> WarmstartResult:
    """Cross-job memoization: the IC-inspection operating mode where
    near-identical samples are scanned job after job.

    Three reconstructions of two scans (same sample, independent noise):

    - ``scan-1`` and ``scan-2`` run as *service jobs* on a
      :class:`~repro.service.ReconstructionScheduler` whose shared memo
      service hands job 1's database tier to job 2 (the warm start),
    - ``scan-2 (cold)`` runs standalone on a fresh database — the control
      the warm hit rate is measured against.

    The cold solver's live database tier is then snapshotted to disk,
    loaded back, and probed for bit-identical ``query_batch`` outcomes —
    the persistence guarantee the service's durability rests on.
    """
    from ..lamino.projector import simulate_data
    from ..service import JobSpec, ReconstructionScheduler, ServiceConfig

    if quick:
        sim_outer = min(sim_outer, 5)
    geometry, truth, data1 = build(spec, seed=3)
    data2 = simulate_data(truth, geometry, noise_level=spec.noise, seed=17)
    cfg = MLRConfig(chunk_size=spec.sim_chunk, memo=_memo_config(tau))
    admm = _admm_config(sim_outer)

    # control: the second scan on a fresh (cold) database
    cold = MLRSolver(geometry, cfg, admm=admm)
    cold.reconstruct(data2)
    cold_stats = cold.executor.db_stats_total()

    # the service runs both scans as jobs sharing one memo tier
    with ReconstructionScheduler(ServiceConfig(n_workers=1, share_memo=True)) as sched:
        jobs = [
            sched.submit(
                JobSpec(name=name, geometry=geometry, projections=d,
                        config=cfg, admm=admm)
            )
            for name, d in (("scan-1", data1), ("scan-2", data2))
        ]
        for handle in jobs:
            if not handle.wait(timeout=600):
                raise RuntimeError(f"job {handle.spec.name} did not finish")
            if handle.error is not None:
                raise handle.error

    identical, n_parts, nbytes = _snapshot_proof(cold.memo_executor, snapshot_dir)

    def row(name, mode, stats, entries):
        return [name, mode, stats.queries, stats.hits,
                round(stats.hit_rate, 4), entries]

    h1, h2 = jobs
    return WarmstartResult(
        job_rows=[
            row("scan-1", "service (cold)", h1.memo_delta, h1.db_entries_start),
            row("scan-2", "service (warm)", h2.memo_delta, h2.db_entries_start),
            row("scan-2", "standalone cold", cold_stats, 0),
        ],
        first_job_hit_rate=h1.memo_delta.hit_rate,
        cold_hit_rate=cold_stats.hit_rate,
        warm_hit_rate=h2.memo_delta.hit_rate,
        snapshot_bit_identical=identical,
        snapshot_partitions=n_parts,
        snapshot_nbytes=nbytes,
    )
