"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

__all__ = ["table", "series", "cdf_rows"]


def table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series(name: str, xs, ys, xlabel: str = "x", ylabel: str = "y") -> str:
    """A named (x, y) series as rows — the textual form of a figure curve."""
    return table([xlabel, ylabel], [[x, y] for x, y in zip(xs, ys)], title=name)


def cdf_rows(values, quantiles=(0.25, 0.5, 0.75, 0.9, 0.99)) -> list[list]:
    """Quantile rows summarizing a latency distribution."""
    vals = sorted(values)
    if not vals:
        return [[q, float("nan")] for q in quantiles]
    out = []
    for q in quantiles:
        idx = min(len(vals) - 1, int(q * len(vals)))
        out.append([q, vals[idx]])
    return out


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)
