"""Experiment harness: datasets, per-figure regenerators, reporting."""

from . import experiments, report
from .datasets import DATASETS, LARGE, MEDIUM, SMALL, DatasetSpec, build

__all__ = [
    "experiments",
    "report",
    "DATASETS",
    "LARGE",
    "MEDIUM",
    "SMALL",
    "DatasetSpec",
    "build",
]
