"""k-means: clustering quality, edge cases, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import assign, kmeans


def blobs(rng, k=3, per=30, dim=4, spread=0.1):
    centers = rng.standard_normal((k, dim)) * 5
    pts = np.concatenate(
        [c + spread * rng.standard_normal((per, dim)) for c in centers]
    )
    return pts, centers


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        pts, true_centers = blobs(rng)
        centers, labels = kmeans(pts, 3, seed=0)
        # each found center must be near one true center
        for c in centers:
            assert np.min(np.linalg.norm(true_centers - c, axis=1)) < 0.5

    def test_labels_match_assign(self, rng):
        pts, _ = blobs(rng)
        centers, labels = kmeans(pts, 3, seed=1)
        np.testing.assert_array_equal(labels, assign(pts, centers))

    def test_k_equals_n(self, rng):
        pts = rng.standard_normal((5, 3))
        centers, labels = kmeans(pts, 5, seed=0)
        assert len(np.unique(labels)) == 5

    def test_k_one(self, rng):
        pts = rng.standard_normal((20, 3))
        centers, labels = kmeans(pts, 1)
        np.testing.assert_allclose(centers[0], pts.mean(axis=0), rtol=1e-6)

    @pytest.mark.parametrize("k", [0, 100])
    def test_invalid_k(self, rng, k):
        with pytest.raises(ValueError):
            kmeans(rng.standard_normal((10, 2)), k)

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.standard_normal(10), 2)

    def test_deterministic_by_seed(self, rng):
        pts, _ = blobs(rng)
        c1, _ = kmeans(pts, 3, seed=7)
        c2, _ = kmeans(pts, 3, seed=7)
        np.testing.assert_array_equal(c1, c2)

    def test_no_empty_clusters_on_duplicates(self):
        pts = np.zeros((10, 2))
        pts[5:] = 1.0
        centers, labels = kmeans(pts, 2, seed=0)
        assert len(np.unique(labels)) == 2

    def test_inertia_not_worse_than_init(self, rng):
        pts, _ = blobs(rng, spread=1.0)
        centers, labels = kmeans(pts, 3, n_iters=25, seed=0)
        inertia = np.sum((pts - centers[labels]) ** 2)
        c0, l0 = kmeans(pts, 3, n_iters=0, seed=0)
        inertia0 = np.sum((pts - c0[l0]) ** 2)
        assert inertia <= inertia0 + 1e-9
