"""Flat / IVF / HNSW index behavior and recall guarantees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann import FlatIndex, HNSWIndex, IVFFlatIndex


def dataset(rng, n=200, dim=8):
    return rng.standard_normal((n, dim)).astype(np.float32)


class TestFlat:
    def test_empty_search(self):
        idx = FlatIndex(4)
        d, i = idx.search(np.zeros((1, 4)), k=3)
        assert np.all(np.isinf(d)) and np.all(i == -1)

    def test_exact_nearest(self, rng):
        vecs = dataset(rng)
        idx = FlatIndex(8)
        idx.add(vecs)
        q = vecs[17] + 0.001
        d, i = idx.search(q, k=1)
        assert i[0, 0] == 17

    def test_k_larger_than_index(self, rng):
        idx = FlatIndex(4)
        idx.add(rng.standard_normal((2, 4)).astype(np.float32))
        d, i = idx.search(np.zeros((1, 4)), k=5)
        assert (i[0, :2] >= 0).all() and (i[0, 2:] == -1).all()

    def test_custom_ids(self, rng):
        idx = FlatIndex(4)
        vecs = dataset(rng, n=3, dim=4)
        idx.add(vecs, ids=np.array([100, 200, 300]))
        _, i = idx.search(vecs[1], k=1)
        assert i[0, 0] == 200

    def test_dim_mismatch(self, rng):
        idx = FlatIndex(4)
        with pytest.raises(ValueError):
            idx.add(rng.standard_normal((2, 5)).astype(np.float32))

    def test_distances_sorted_and_euclidean(self, rng):
        vecs = dataset(rng, n=50)
        idx = FlatIndex(8)
        idx.add(vecs)
        q = rng.standard_normal(8).astype(np.float32)
        d, i = idx.search(q, k=5)
        assert (np.diff(d[0]) >= -1e-6).all()
        np.testing.assert_allclose(
            d[0, 0], np.linalg.norm(vecs[i[0, 0]] - q), rtol=1e-4
        )


class TestIVF:
    def test_requires_training(self, rng):
        idx = IVFFlatIndex(8)
        with pytest.raises(RuntimeError):
            idx.add(dataset(rng, 4))
        with pytest.raises(RuntimeError):
            idx.search(np.zeros((1, 8)))

    def test_recall_with_full_probe(self, rng):
        """nprobe == n_clusters makes IVF exact."""
        vecs = dataset(rng, n=300)
        ivf = IVFFlatIndex(8, n_clusters=8, nprobe=8)
        ivf.train(vecs[:100])
        ivf.add(vecs)
        flat = FlatIndex(8)
        flat.add(vecs)
        q = dataset(rng, n=20)
        _, want = flat.search(q, k=1)
        _, got = ivf.search(q, k=1)
        assert (got == want).mean() == 1.0

    def test_recall_reasonable_with_small_probe(self, rng):
        vecs = dataset(rng, n=400)
        ivf = IVFFlatIndex(8, n_clusters=16, nprobe=4)
        ivf.train(vecs[:200])
        ivf.add(vecs)
        flat = FlatIndex(8)
        flat.add(vecs)
        q = dataset(rng, n=50)
        _, want = flat.search(q, k=1)
        _, got = ivf.search(q, k=1)
        assert (got == want).mean() > 0.6

    def test_dynamic_insertion_is_list_append(self, rng):
        """Adding must not restructure: list sizes only grow by the inserted
        count (the property the paper picks IVF for)."""
        vecs = dataset(rng, n=64)
        ivf = IVFFlatIndex(8, n_clusters=4)
        ivf.train(vecs)
        ivf.add(vecs[:32])
        before = ivf.list_sizes()
        ivf.add(vecs[32:])
        after = ivf.list_sizes()
        assert sum(after) - sum(before) == 32
        assert all(a >= b for a, b in zip(after, before))

    def test_len_counts_entries(self, rng):
        vecs = dataset(rng, n=10)
        ivf = IVFFlatIndex(8, n_clusters=2)
        ivf.train(vecs)
        assert len(ivf) == 0
        ivf.add(vecs)
        assert len(ivf) == 10

    def test_ids_returned_on_add(self, rng):
        vecs = dataset(rng, n=6)
        ivf = IVFFlatIndex(8, n_clusters=2)
        ivf.train(vecs)
        ids1 = ivf.add(vecs[:3])
        ids2 = ivf.add(vecs[3:])
        assert set(ids1) | set(ids2) == set(range(6))

    def test_more_clusters_than_samples_clamped(self, rng):
        vecs = dataset(rng, n=5)
        ivf = IVFFlatIndex(8, n_clusters=32, nprobe=32)
        ivf.train(vecs)
        assert ivf.n_clusters == 5

    def test_batched_search_fewer_centroid_scans(self, rng):
        """One batched call computes fewer distances than per-query calls —
        the effect key coalescing exploits."""
        vecs = dataset(rng, n=200)
        q = dataset(rng, n=16)
        a = IVFFlatIndex(8, n_clusters=8, nprobe=2)
        a.train(vecs[:100]); a.add(vecs)
        a.n_distance_computations = 0
        a.search(q, k=1)
        batched = a.n_distance_computations
        b = IVFFlatIndex(8, n_clusters=8, nprobe=2)
        b.train(vecs[:100]); b.add(vecs)
        b.n_distance_computations = 0
        for row in q:
            b.search(row[None], k=1)
        sequential = b.n_distance_computations
        assert batched <= sequential


class TestHNSW:
    def test_empty_search(self):
        idx = HNSWIndex(4)
        d, i = idx.search(np.zeros((1, 4)))
        assert np.all(i == -1)

    def test_single_element(self, rng):
        idx = HNSWIndex(4)
        v = rng.standard_normal((1, 4)).astype(np.float32)
        idx.add(v)
        d, i = idx.search(v)
        assert i[0, 0] == 0 and d[0, 0] < 1e-5

    def test_recall_against_flat(self, rng):
        vecs = dataset(rng, n=300)
        hnsw = HNSWIndex(8, m=8, ef_construction=48, ef_search=32, seed=0)
        hnsw.add(vecs)
        flat = FlatIndex(8)
        flat.add(vecs)
        q = dataset(rng, n=40)
        _, want = flat.search(q, k=1)
        _, got = hnsw.search(q, k=1)
        assert (got == want).mean() > 0.85

    def test_insertion_rewires_graph(self, rng):
        """The reconstruction cost the paper avoids: inserts touch existing
        nodes' edge lists (unlike IVF's pure appends)."""
        idx = HNSWIndex(8, m=4, seed=0)
        idx.add(dataset(rng, n=100))
        assert idx.n_edge_updates > 100

    def test_dim_mismatch(self, rng):
        idx = HNSWIndex(4)
        with pytest.raises(ValueError):
            idx.add(rng.standard_normal((2, 5)).astype(np.float32))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_nearest_self_query(self, seed):
        rng = np.random.default_rng(seed)
        vecs = rng.standard_normal((60, 6)).astype(np.float32)
        idx = HNSWIndex(6, m=6, ef_search=24, seed=seed)
        idx.add(vecs)
        _, got = idx.search(vecs[:10], k=1)
        assert (got[:, 0] == np.arange(10)).mean() >= 0.9


class TestGrowableRows:
    """The contiguous growable buffer behind Flat/IVF and the memo pretrain."""

    def test_append_and_view(self):
        from repro.ann import GrowableRows

        g = GrowableRows((3,), np.float32, capacity=2)
        for i in range(9):  # forces several doublings
            g.append(np.full(3, i, dtype=np.float32))
        assert len(g) == 9
        np.testing.assert_array_equal(g.view[:, 0], np.arange(9, dtype=np.float32))
        assert g.view.base is not None  # a view, not a copy

    def test_scalar_rows(self):
        from repro.ann import GrowableRows

        g = GrowableRows((), np.int64, capacity=1)
        g.extend(np.arange(5))
        g.append(99)
        np.testing.assert_array_equal(g.view, [0, 1, 2, 3, 4, 99])

    def test_extend_shape_validated(self):
        from repro.ann import GrowableRows

        g = GrowableRows((4,), np.float32)
        with pytest.raises(ValueError):
            g.extend(np.zeros((2, 5), dtype=np.float32))

    def test_clear_keeps_capacity(self):
        from repro.ann import GrowableRows

        g = GrowableRows((2,), np.float32)
        g.extend(np.ones((5, 2), dtype=np.float32))
        g.clear()
        assert len(g) == 0 and g.view.shape == (0, 2)
        g.append(np.zeros(2, dtype=np.float32))
        assert len(g) == 1

    def test_invalid_capacity(self):
        from repro.ann import GrowableRows

        with pytest.raises(ValueError):
            GrowableRows((2,), capacity=0)


class TestIncrementalBuffers:
    """Index results must not depend on how the collection was grown."""

    def test_flat_incremental_adds_match_bulk(self, rng):
        vecs = dataset(rng, n=120)
        inc, bulk = FlatIndex(8), FlatIndex(8)
        for i in range(0, 120, 7):  # ragged increments
            inc.add(vecs[i : i + 7])
        bulk.add(vecs)
        q = dataset(rng, n=10)
        d_i, i_i = inc.search(q, k=3)
        d_b, i_b = bulk.search(q, k=3)
        np.testing.assert_array_equal(i_i, i_b)
        np.testing.assert_allclose(d_i, d_b, rtol=1e-6)

    def test_flat_distance_count_unchanged_by_growth(self, rng):
        """n_distance_computations stays nq * n_stored regardless of the
        internal buffer capacity."""
        idx = FlatIndex(8)
        idx.add(dataset(rng, n=33))
        idx.search(dataset(rng, n=5), k=2)
        assert idx.n_distance_computations == 5 * 33

    def test_ivf_incremental_adds_match_bulk(self, rng):
        vecs = dataset(rng, n=200)
        a = IVFFlatIndex(8, n_clusters=8, nprobe=8)
        b = IVFFlatIndex(8, n_clusters=8, nprobe=8)
        a.train(vecs[:100])
        b.train(vecs[:100])
        for i in range(0, 200, 11):
            a.add(vecs[i : i + 11])
        b.add(vecs)
        q = dataset(rng, n=20)
        _, ia = a.search(q, k=1)
        _, ib = b.search(q, k=1)
        np.testing.assert_array_equal(ia, ib)

    def test_ivf_single_append_fast_path(self, rng):
        vecs = dataset(rng, n=40)
        ivf = IVFFlatIndex(8, n_clusters=4, nprobe=4)
        ivf.train(vecs)
        for v in vecs:  # one-at-a-time dynamic insertion (the memo pattern)
            ivf.add(v[None])
        assert len(ivf) == 40
        _, got = ivf.search(vecs[:10], k=1)
        assert (got[:, 0] == np.arange(10)).all()
