"""TV prox (RSP) correctness: closed-form checks and prox properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import grad3, rsp_update, shrink_isotropic, tv_norm


class TestTVNorm:
    def test_constant_volume_has_zero_tv(self):
        assert tv_norm(np.full((6, 6, 6), 2.5)) == 0.0

    def test_step_edge_tv_value(self):
        """A single axis-0 step of height 1 across an (n,n,n) periodic volume
        contributes 2*n*n (two wrap-around jumps)."""
        n = 8
        u = np.zeros((n, n, n))
        u[: n // 2] = 1.0
        assert tv_norm(u) == pytest.approx(2 * n * n)

    def test_tv_scales_linearly(self, rng):
        u = rng.standard_normal((6, 6, 6))
        assert tv_norm(3.0 * u) == pytest.approx(3.0 * tv_norm(u), rel=1e-6)


class TestShrink:
    def test_zero_threshold_is_identity(self, rng):
        z = rng.standard_normal((3, 4, 4, 4))
        np.testing.assert_allclose(shrink_isotropic(z, 0.0), z)

    def test_large_threshold_kills_everything(self, rng):
        z = rng.standard_normal((3, 4, 4, 4))
        out = shrink_isotropic(z, 1e9)
        assert np.allclose(out, 0.0)

    def test_negative_threshold_rejected(self, rng):
        with pytest.raises(ValueError):
            shrink_isotropic(rng.standard_normal((3, 2, 2, 2)), -1.0)

    def test_magnitude_reduced_by_exactly_kappa(self, rng):
        z = rng.standard_normal((3, 4, 4, 4)) * 10  # well above threshold
        kappa = 0.5
        out = shrink_isotropic(z, kappa)
        mag_in = np.sqrt((z**2).sum(axis=0))
        mag_out = np.sqrt((out**2).sum(axis=0))
        np.testing.assert_allclose(mag_out, mag_in - kappa, rtol=1e-6)

    def test_direction_preserved(self, rng):
        z = rng.standard_normal((3, 4, 4, 4)) * 10
        out = shrink_isotropic(z, 0.3)
        cos = (z * out).sum(axis=0) / (
            np.sqrt((z**2).sum(axis=0)) * np.sqrt((out**2).sum(axis=0))
        )
        np.testing.assert_allclose(cos, 1.0, rtol=1e-6)

    @given(seed=st.integers(0, 2**31 - 1), kappa=st.floats(0.0, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_nonexpansive(self, seed, kappa):
        """prox operators are firmly non-expansive: |S(a)-S(b)| <= |a-b|."""
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((3, 3, 3, 3))
        b = rng.standard_normal((3, 3, 3, 3))
        d_out = np.linalg.norm(shrink_isotropic(a, kappa) - shrink_isotropic(b, kappa))
        assert d_out <= np.linalg.norm(a - b) + 1e-9

    def test_complex_field_shrinks_by_magnitude(self, rng):
        z = (rng.standard_normal((3, 4, 4, 4)) + 1j * rng.standard_normal((3, 4, 4, 4))) * 10
        out = shrink_isotropic(z, 1.0)
        mag_in = np.sqrt((np.abs(z) ** 2).sum(axis=0))
        mag_out = np.sqrt((np.abs(out) ** 2).sum(axis=0))
        np.testing.assert_allclose(mag_out, mag_in - 1.0, rtol=1e-5)


class TestRSPUpdate:
    def test_solves_prox_subproblem(self, rng):
        """psi must minimize alpha*||psi||_1 + rho/2 ||grad u + lam/rho - psi||^2:
        compare objective against random perturbations."""
        u = rng.standard_normal((5, 5, 5))
        lam = rng.standard_normal((3, 5, 5, 5)) * 0.1
        alpha, rho = 0.3, 0.7
        psi = rsp_update(u, lam, alpha, rho)
        z = grad3(u) + lam / rho

        def objective(p):
            return alpha * np.sqrt((p**2).sum(axis=0)).sum() + 0.5 * rho * np.sum(
                (z - p) ** 2
            )

        base = objective(psi)
        for _ in range(5):
            assert base <= objective(psi + 0.01 * rng.standard_normal(psi.shape)) + 1e-9

    def test_invalid_rho_rejected(self, rng):
        with pytest.raises(ValueError):
            rsp_update(rng.standard_normal((4, 4, 4)), np.zeros((3, 4, 4, 4)), 0.1, 0.0)
