"""Gradient/divergence adjointness — the identity ADMM relies on."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import div3, grad3, grad_norm


class TestShapes:
    def test_grad_adds_component_axis(self, rng):
        u = rng.standard_normal((4, 5, 6))
        assert grad3(u).shape == (3, 4, 5, 6)

    def test_div_removes_component_axis(self, rng):
        p = rng.standard_normal((3, 4, 5, 6))
        assert div3(p).shape == (4, 5, 6)

    def test_div_validates_leading_axis(self, rng):
        import pytest

        with pytest.raises(ValueError):
            div3(rng.standard_normal((2, 4, 4, 4)))


class TestAdjointness:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_div_is_negative_adjoint_of_grad(self, seed):
        rng = np.random.default_rng(seed)
        u = rng.standard_normal((6, 5, 4)) + 1j * rng.standard_normal((6, 5, 4))
        p = rng.standard_normal((3, 6, 5, 4)) + 1j * rng.standard_normal((3, 6, 5, 4))
        lhs = np.vdot(p, grad3(u))
        rhs = np.vdot(-div3(p), u)
        assert abs(lhs - rhs) < 1e-10 * max(abs(lhs), 1.0)

    def test_constant_field_has_zero_gradient(self):
        u = np.full((4, 4, 4), 3.7)
        assert np.allclose(grad3(u), 0.0)

    def test_grad_norm_nonnegative(self, rng):
        g = grad3(rng.standard_normal((4, 4, 4)))
        assert (grad_norm(g) >= 0).all()

    def test_laplacian_eigenvalue_bound(self, rng):
        """lambda_max(grad^T grad) <= 12 — the bound LSP's step sizing uses."""
        u = rng.standard_normal((8, 8, 8))
        for _ in range(30):
            v = -div3(grad3(u))
            u = v / np.linalg.norm(v)
        lam = np.vdot(u, -div3(grad3(u))).real
        assert lam <= 12.0 + 1e-9
