"""CG machinery: linear CG convergence and the gradient-only NCG update."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers import NCGState, cg_linear


def make_spd(rng, n=20, cond=50.0):
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eigs = np.geomspace(1.0, cond, n)
    return q @ np.diag(eigs) @ q.T


class TestLinearCG:
    def test_exact_convergence_in_n_steps(self, rng):
        A = make_spd(rng, n=12)
        x_true = rng.standard_normal(12)
        b = A @ x_true
        x, hist = cg_linear(lambda v: A @ v, b, np.zeros(12), n_iters=12)
        assert np.linalg.norm(x - x_true) < 1e-6
        assert hist[-1] < hist[0]

    def test_residual_monotone_decrease(self, rng):
        A = make_spd(rng, n=30, cond=100)
        b = rng.standard_normal(30)
        _, hist = cg_linear(lambda v: A @ v, b, np.zeros(30), n_iters=15)
        # CG residuals are not strictly monotone, but error decreases overall
        assert hist[-1] < 0.1 * hist[0]

    def test_tol_early_exit(self, rng):
        A = np.eye(5)
        b = rng.standard_normal(5)
        _, hist = cg_linear(lambda v: v, b, np.zeros(5), n_iters=50, tol=1e-12)
        assert len(hist) <= 3  # identity converges in one step

    def test_complex_operator(self, rng):
        d = rng.uniform(1, 3, size=8)
        apply_A = lambda v: d * v  # noqa: E731
        b = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        x, _ = cg_linear(apply_A, b, np.zeros(8, dtype=complex), n_iters=20)
        np.testing.assert_allclose(x, b / d, rtol=1e-8)


class TestNCG:
    def test_invalid_lipschitz(self, rng):
        state = NCGState(lipschitz=0.0)
        with pytest.raises(ValueError):
            state.step(np.zeros(3), np.ones(3))

    def test_first_step_is_scaled_steepest_descent(self, rng):
        state = NCGState(lipschitz=4.0)
        u = rng.standard_normal(10)
        g = rng.standard_normal(10)
        out = state.step(u, g)
        np.testing.assert_allclose(out, u - g / 4.0)

    def test_quadratic_convergence(self, rng):
        """Minimize 1/2 x^T A x - b^T x with gradient-only NCG steps."""
        A = make_spd(rng, n=15, cond=30)
        b = rng.standard_normal(15)
        x_true = np.linalg.solve(A, b)
        lip = float(np.linalg.eigvalsh(A).max())
        state = NCGState(lipschitz=lip)
        x = np.zeros(15)
        for _ in range(60):
            x = state.step(x, A @ x - b)
        assert np.linalg.norm(x - x_true) < 1e-4 * max(np.linalg.norm(x_true), 1.0)

    def test_reset_clears_memory(self, rng):
        state = NCGState(lipschitz=2.0)
        u = rng.standard_normal(5)
        g = rng.standard_normal(5)
        state.step(u, g)
        state.reset()
        out = state.step(u, g)
        np.testing.assert_allclose(out, u - g / 2.0)

    def test_descends_on_convex_quadratic(self, rng):
        A = make_spd(rng, n=10, cond=10)
        b = rng.standard_normal(10)
        f = lambda x: 0.5 * x @ A @ x - b @ x  # noqa: E731
        state = NCGState(lipschitz=float(np.linalg.eigvalsh(A).max()))
        x = np.zeros(10)
        values = [f(x)]
        for _ in range(20):
            x = state.step(x, A @ x - b)
            values.append(f(x))
        assert values[-1] < values[0]
