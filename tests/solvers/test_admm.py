"""ADMM end-to-end: convergence, history, adaptive rho, config validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers import ADMMConfig, ADMMSolver, DirectExecutor


class TestConfigValidation:
    def test_defaults_valid(self):
        ADMMConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": -1.0},
            {"rho": 0.0},
            {"n_outer": 0},
            {"n_inner": 0},
            {"cancellation": False, "fusion": True},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            ADMMConfig(**kwargs)


@pytest.fixture(scope="module")
def solved(request):
    """One shared 8-iteration solve on the tiny problem."""
    from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data

    g = LaminoGeometry((16, 16, 16), n_angles=12, det_shape=(16, 16), tilt_deg=61.0)
    ops = LaminoOperators(g)
    truth = brain_like(g.vol_shape, seed=7)
    d = simulate_data(truth, g, noise_level=0.01, seed=1)
    cfg = ADMMConfig(alpha=1e-3, rho=0.5, n_outer=8, n_inner=4)
    solver = ADMMSolver(ops, cfg)
    result = solver.run(d)
    return g, ops, truth, d, result


class TestConvergence:
    def test_loss_decreases(self, solved):
        *_, result = solved
        loss = result.history["loss"]
        assert loss[-1] < 0.2 * loss[0]

    def test_reconstruction_correlates_with_truth(self, solved):
        _, _, truth, _, result = solved
        rec = result.u.real.ravel()
        t = truth.ravel()
        corr = np.corrcoef(rec, t)[0, 1]
        assert corr > 0.8

    def test_history_lengths(self, solved):
        *_, result = solved
        for key in ("loss", "data_loss", "tv", "primal_res", "dual_res", "rho"):
            assert len(result.history[key]) == 8

    def test_result_dtype_and_shape(self, solved):
        g, *_ , result = solved
        assert result.u.shape == g.vol_shape
        assert result.u.dtype == np.complex64

    def test_op_counts_recorded(self, solved):
        *_, result = solved
        # 8 outer * 4 inner calls of each of the 4 cancelled-pipeline ops,
        # plus the single upfront F2D of the data.
        assert result.op_counts["Fu1D"] == 32
        assert result.op_counts["F2D"] == 1


class TestBehaviours:
    def test_data_shape_validated(self, solved):
        _, ops, *_ = solved
        solver = ADMMSolver(ops, ADMMConfig(n_outer=1))
        with pytest.raises(ValueError):
            solver.run(np.zeros((2, 3, 4), dtype=np.float32))

    def test_warm_start_improves_first_loss(self, solved):
        _, ops, truth, d, result = solved
        solver = ADMMSolver(ops, ADMMConfig(n_outer=1, n_inner=2))
        cold = solver.run(d)
        solver2 = ADMMSolver(ops, ADMMConfig(n_outer=1, n_inner=2))
        warm = solver2.run(d, u0=result.u)
        assert warm.history["loss"][0] < cold.history["loss"][0]

    def test_callback_invoked_each_iteration(self, solved):
        _, ops, _, d, _ = solved
        seen = []
        solver = ADMMSolver(ops, ADMMConfig(n_outer=3, n_inner=1))
        solver.run(d, callback=lambda it, u, h: seen.append((it, h["rho"])))
        assert [s[0] for s in seen] == [0, 1, 2]

    def test_adaptive_rho_stays_positive(self, solved):
        *_, result = solved
        assert all(r > 0 for r in result.history["rho"])

    def test_tv_regularization_smooths(self, solved):
        """Higher alpha must yield a lower-TV reconstruction."""
        _, ops, _, d, _ = solved
        from repro.solvers import tv_norm

        lo = ADMMSolver(ops, ADMMConfig(alpha=1e-5, n_outer=6, n_inner=2)).run(d)
        hi = ADMMSolver(ops, ADMMConfig(alpha=3e-2, n_outer=6, n_inner=2)).run(d)
        assert tv_norm(hi.u.real) < tv_norm(lo.u.real)

    def test_executor_iteration_markers(self, solved):
        _, ops, _, d, _ = solved
        ex = DirectExecutor(ops)
        ADMMSolver(ops, ADMMConfig(n_outer=2, n_inner=3), executor=ex).run(d)
        assert ex.outer_iteration == 1
        assert ex.inner_iteration == 2
