"""LSP: pipeline equivalence (Algorithm 1 vs 2), descent, op accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lamino import simulate_data
from repro.solvers import LSP, DirectExecutor, estimate_normal_lipschitz, grad3


@pytest.fixture(scope="module")
def setup(tiny_ops_module):
    ops = tiny_ops_module
    g = ops.geometry
    rng = np.random.default_rng(0)
    u0 = (rng.standard_normal(g.vol_shape) * 0.1).astype(np.complex64)
    from repro.lamino import brain_like

    truth = brain_like(g.vol_shape, seed=7)
    d = simulate_data(truth, g).astype(np.complex64)
    gfield = np.zeros((3,) + g.vol_shape, dtype=np.complex64)
    return ops, u0, d, gfield


@pytest.fixture(scope="module")
def tiny_ops_module():
    from repro.lamino import LaminoGeometry, LaminoOperators

    g = LaminoGeometry((16, 16, 16), n_angles=12, det_shape=(16, 16), tilt_deg=61.0)
    return LaminoOperators(g)


class TestLipschitz:
    def test_estimate_positive_and_stable(self, tiny_ops_module):
        s1 = estimate_normal_lipschitz(tiny_ops_module, n_iters=8, seed=0)
        s2 = estimate_normal_lipschitz(tiny_ops_module, n_iters=8, seed=1)
        assert s1 > 0
        assert s1 == pytest.approx(s2, rel=0.2)  # power iteration converged

    def test_lipschitz_includes_tv_term(self, tiny_ops_module):
        ex = DirectExecutor(tiny_ops_module)
        lsp = LSP(ex, lipschitz_data=5.0)
        assert lsp.lipschitz(rho=1.0) == pytest.approx(17.0)


class TestValidation:
    def test_fusion_without_cancellation_rejected(self, tiny_ops_module):
        ex = DirectExecutor(tiny_ops_module)
        with pytest.raises(ValueError):
            LSP(ex, cancellation=False, fusion=True, lipschitz_data=1.0)

    def test_missing_dhat_rejected(self, setup):
        ops, u0, d, gfield = setup
        lsp = LSP(DirectExecutor(ops), cancellation=True, lipschitz_data=1.0)
        with pytest.raises(ValueError):
            lsp.solve(u0, gfield, rho=1.0, d=d)

    def test_missing_d_rejected(self, setup):
        ops, u0, d, gfield = setup
        lsp = LSP(
            DirectExecutor(ops), cancellation=False, fusion=False, lipschitz_data=1.0
        )
        with pytest.raises(ValueError):
            lsp.solve(u0, gfield, rho=1.0)

    def test_bad_n_inner(self, tiny_ops_module):
        with pytest.raises(ValueError):
            LSP(DirectExecutor(tiny_ops_module), n_inner=0, lipschitz_data=1.0)


class TestPipelineEquivalence:
    def test_three_pipelines_agree(self, setup):
        """Algorithm 1, Algorithm 2 without fusion, Algorithm 2 with fusion
        must produce the same iterate (F2D is unitary)."""
        ops, u0, d, gfield = setup
        dhat = ops.f2d(d)
        results = []
        for canc, fus in ((False, False), (True, False), (True, True)):
            lsp = LSP(
                DirectExecutor(ops),
                n_inner=3,
                cancellation=canc,
                fusion=fus,
                lipschitz_data=2.0,
            )
            res = lsp.solve(
                u0.copy(),
                gfield,
                rho=0.5,
                d=None if canc else d,
                dhat=dhat if canc else None,
            )
            results.append(res.u)
        np.testing.assert_allclose(results[0], results[1], atol=2e-5)
        np.testing.assert_allclose(results[1], results[2], atol=2e-5)

    def test_op_counts_6_vs_4_per_inner(self, setup):
        """Cancellation removes F2D/F2D* from the loop: 6 ops -> 4 ops."""
        ops, u0, d, gfield = setup
        ex6 = DirectExecutor(ops)
        LSP(ex6, n_inner=5, cancellation=False, fusion=False, lipschitz_data=2.0).solve(
            u0.copy(), gfield, rho=0.5, d=d
        )
        assert sum(ex6.op_counts.values()) == 6 * 5
        ex4 = DirectExecutor(ops)
        dhat = ops.f2d(d)
        LSP(ex4, n_inner=5, cancellation=True, fusion=True, lipschitz_data=2.0).solve(
            u0.copy(), gfield, rho=0.5, dhat=dhat
        )
        assert sum(ex4.op_counts.values()) == 4 * 5
        assert "F2D" not in ex4.op_counts and "F2D*" not in ex4.op_counts


class TestDescent:
    def test_data_loss_decreases(self, setup):
        ops, u0, d, gfield = setup
        dhat = ops.f2d(d)
        lsp1 = LSP(DirectExecutor(ops), n_inner=1, lipschitz_data=None)
        lsp8 = LSP(DirectExecutor(ops), n_inner=8, lipschitz_data=lsp1._sigma)
        r1 = lsp1.solve(u0.copy(), gfield, rho=0.1, dhat=dhat)
        r8 = lsp8.solve(u0.copy(), gfield, rho=0.1, dhat=dhat)
        assert r8.data_loss < r1.data_loss

    def test_gradient_norm_history_recorded(self, setup):
        ops, u0, d, gfield = setup
        dhat = ops.f2d(d)
        lsp = LSP(DirectExecutor(ops), n_inner=4, lipschitz_data=2.0)
        res = lsp.solve(u0.copy(), gfield, rho=0.5, dhat=dhat)
        assert len(res.grad_norms) == 4
        assert all(gn > 0 for gn in res.grad_norms)

    def test_penalty_pulls_gradient_towards_g(self, setup):
        """With huge rho, the LSP solution's gradient field approaches g."""
        ops, u0, d, gfield = setup
        rng = np.random.default_rng(3)
        target = (rng.standard_normal((3,) + ops.geometry.vol_shape) * 0.01).astype(
            np.complex64
        )
        dhat = ops.f2d(d)
        lsp = LSP(DirectExecutor(ops), n_inner=20, lipschitz_data=None)
        res = lsp.solve(u0.copy(), target, rho=1e4, dhat=dhat)
        before = np.linalg.norm(grad3(u0) - target)
        after = np.linalg.norm(grad3(res.u) - target)
        assert after < 0.5 * before
