"""Metric definitions (paper Eqs. 3-5) and edge cases."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import accuracy, cosine_similarity, psnr, relative_error, rmse


class TestRelativeError:
    def test_identical_arrays_give_zero(self, rng):
        a = rng.standard_normal((4, 4))
        assert relative_error(a, a) == 0.0

    def test_known_value(self):
        a = np.array([3.0, 4.0])
        b = np.array([3.0, 4.0]) * 1.1
        assert relative_error(a, b) == pytest.approx(0.1)

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            relative_error(np.zeros(3), np.ones(3))

    def test_accuracy_complements_error(self, rng):
        a = rng.standard_normal((5, 5))
        b = a + 0.05 * rng.standard_normal((5, 5))
        assert accuracy(a, b) == pytest.approx(1.0 - relative_error(a, b))


class TestCosineSimilarity:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(16)
        b = rng.standard_normal(16)
        assert -1.0 - 1e-9 <= cosine_similarity(a, b) <= 1.0 + 1e-9

    def test_self_similarity_is_one(self, rng):
        a = rng.standard_normal(10)
        assert cosine_similarity(a, a) == pytest.approx(1.0)

    def test_opposite_is_minus_one(self, rng):
        a = rng.standard_normal(10)
        assert cosine_similarity(a, -a) == pytest.approx(-1.0)

    def test_zero_vector_gives_zero(self):
        assert cosine_similarity(np.zeros(5), np.ones(5)) == 0.0

    def test_scale_invariant(self, rng):
        a = rng.standard_normal(8)
        b = rng.standard_normal(8)
        assert cosine_similarity(a, b) == pytest.approx(cosine_similarity(3 * a, 7 * b))

    def test_complex_arrays(self, rng):
        a = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        assert cosine_similarity(a, a) == pytest.approx(1.0)


class TestPSNRAndRMSE:
    def test_rmse_zero_for_identical(self, rng):
        a = rng.standard_normal((3, 3))
        assert rmse(a, a) == 0.0

    def test_psnr_infinite_for_identical(self, rng):
        a = rng.standard_normal((3, 3))
        assert psnr(a, a) == float("inf")

    def test_psnr_decreases_with_noise(self, rng):
        a = rng.standard_normal((16, 16))
        small = a + 0.01 * rng.standard_normal((16, 16))
        big = a + 0.5 * rng.standard_normal((16, 16))
        assert psnr(a, small) > psnr(a, big)

    def test_psnr_zero_reference_raises(self):
        with pytest.raises(ValueError):
            psnr(np.zeros(4), np.ones(4))
