"""Snapshot-aware key-encoder lifecycle (ROADMAP item).

A CNN-keyed deployment's memo snapshot must carry the trained encoder, and
a warm start must auto-install it — keys from a different training never
tau-match, so without this a warm start silently runs at ~0% hit rate (or,
worse, re-trains).  The fingerprint check covers the restored weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CNNKeyEncoder, MemoConfig, MLRConfig, MLRSolver
from repro.core.memo_engine import MemoizedExecutor
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.nn import ChunkEncoder
from repro.service import load_memo_snapshot, save_memo_snapshot
from repro.solvers import ADMMConfig

ADMM = ADMMConfig(n_outer=3, n_inner=2, step_max_rel=4.0)


def cnn_encoder(seed: int = 5) -> CNNKeyEncoder:
    return CNNKeyEncoder(ChunkEncoder(input_hw=8, embed_dim=10, seed=seed),
                         quantized=True)


def memo_cfg(**over) -> MemoConfig:
    base = dict(encoder="cnn", warmup_iterations=1, index_train_min=4,
                index_clusters=2, index_nprobe=2)
    base.update(over)
    return MemoConfig(**base)


@pytest.fixture(scope="module")
def problem():
    n = 16
    g = LaminoGeometry((n, n, n), n_angles=12, det_shape=(n, n), tilt_deg=61.0)
    ops = LaminoOperators(g)
    d = simulate_data(brain_like(g.vol_shape, seed=7), g, noise_level=0.03, seed=1)
    return g, ops, d


class TestWeightsDigest:
    def test_digest_is_deterministic_and_weight_sensitive(self):
        assert cnn_encoder(5).weights_digest() == cnn_encoder(5).weights_digest()
        assert cnn_encoder(5).weights_digest() != cnn_encoder(6).weights_digest()

    def test_digest_survives_state_roundtrip(self):
        enc = cnn_encoder()
        restored = CNNKeyEncoder.from_state(enc.state_dict())
        assert restored.weights_digest() == enc.weights_digest()

    def test_fingerprint_carries_weights(self, tiny_ops):
        ex = MemoizedExecutor(tiny_ops, config=memo_cfg(), chunk_size=4,
                              encoder=cnn_encoder())
        fp = ex._encoder_fingerprint()
        assert fp["kind"] == "CNNKeyEncoder"
        assert fp["weights"] == ex.encoder.weights_digest()
        # the pool encoder is stateless: no weights digest
        pool_ex = MemoizedExecutor(tiny_ops, config=MemoConfig(), chunk_size=4)
        assert pool_ex._encoder_fingerprint()["weights"] is None


class TestSnapshotCarriesEncoder:
    def test_memo_state_embeds_encoder_state(self, problem):
        g, ops, d = problem
        solver = MLRSolver(g, MLRConfig(chunk_size=4, memo=memo_cfg()),
                           admm=ADMM, ops=ops, encoder=cnn_encoder())
        solver.reconstruct(d)
        state = solver.memo_executor.memo_state()
        assert state["encoder_state"] is not None
        restored = CNNKeyEncoder.from_state(state["encoder_state"])
        assert restored.weights_digest() == solver.memo_executor.encoder.weights_digest()

    def test_disk_snapshot_roundtrips_encoder(self, problem, tmp_path):
        g, ops, d = problem
        solver = MLRSolver(g, MLRConfig(chunk_size=4, memo=memo_cfg()),
                           admm=ADMM, ops=ops, encoder=cnn_encoder())
        solver.reconstruct(d)
        save_memo_snapshot(tmp_path / "snap", solver.memo_executor)
        # save_encoder wrote the standalone encoder snapshot alongside
        assert (tmp_path / "snap" / "encoder" / "manifest.json").is_file()
        tree = load_memo_snapshot(tmp_path / "snap")
        assert tree["encoder_state"] is not None
        # the raw disk tree digests identically to the live encoder — what
        # lets warm starts skip rebuilding an encoder just to compare
        from repro.core.keying import state_digest

        assert state_digest(tree["encoder_state"]) == (
            solver.memo_executor.encoder.weights_digest()
        )


class TestAutoInstall:
    def test_warm_start_installs_encoder_without_retrain(self, problem, tmp_path):
        """encoder='cnn' + memo_snapshot used to be unconstructible without
        an explicit encoder; now the snapshot's encoder auto-installs and
        keys match bit for bit (warm run actually hits)."""
        g, ops, d = problem
        enc = cnn_encoder()
        first = MLRSolver(g, MLRConfig(chunk_size=4, memo=memo_cfg()),
                          admm=ADMM, ops=ops, encoder=enc)
        first.reconstruct(d)
        path = tmp_path / "snap"
        first.save_memo_snapshot(path)

        warm = MLRSolver(
            g, MLRConfig(chunk_size=4, memo=memo_cfg(), memo_snapshot=path),
            admm=ADMM, ops=ops,
        )  # no encoder passed, no train_encoder call
        installed = warm.memo_executor.encoder
        assert isinstance(installed, CNNKeyEncoder)
        assert installed.weights_digest() == enc.weights_digest()
        probe = (np.ones((4, 12, 16)) + 0j).astype(np.complex64)
        np.testing.assert_array_equal(installed.encode(probe), enc.encode(probe))

        res = warm.reconstruct(d)
        served = res.case_counts.get("db_hit", 0) + res.case_counts.get("cache_hit", 0)
        assert warm.memo_executor.db_entries_total() > 0
        assert served > 0  # restored keys actually match

    def test_matching_encoder_not_reinstalled(self, problem, tmp_path):
        g, ops, d = problem
        enc = cnn_encoder()
        first = MLRSolver(g, MLRConfig(chunk_size=4, memo=memo_cfg()),
                          admm=ADMM, ops=ops, encoder=enc)
        first.reconstruct(d)
        tree = first.memo_executor.memo_state()

        same = MLRSolver(g, MLRConfig(chunk_size=4, memo=memo_cfg()),
                         admm=ADMM, ops=ops, encoder=enc)
        same.load_memo_snapshot(tree)
        assert same.memo_executor.encoder is enc  # kept, not replaced
        assert same.memo_executor.db_entries_total() > 0

    def test_mismatched_weights_fail_fast_without_auto_install(self, problem):
        """An executor already running *different* CNN weights must not
        silently accept keys from another training."""
        g, ops, d = problem
        first = MLRSolver(g, MLRConfig(chunk_size=4, memo=memo_cfg()),
                          admm=ADMM, ops=ops, encoder=cnn_encoder(seed=5))
        first.reconstruct(d)
        tree = first.memo_executor.memo_state()
        other = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4,
                                 encoder=cnn_encoder(seed=99))
        with pytest.raises(ValueError, match="weights"):
            other.load_memo_state(tree)

    def test_solver_path_replaces_mismatched_weights(self, problem):
        """Through MLRSolver the snapshot's encoder wins: the executor's
        stale encoder is replaced (reset included) instead of failing."""
        g, ops, d = problem
        first = MLRSolver(g, MLRConfig(chunk_size=4, memo=memo_cfg()),
                          admm=ADMM, ops=ops, encoder=cnn_encoder(seed=5))
        first.reconstruct(d)
        tree = first.memo_executor.memo_state()

        stale = MLRSolver(g, MLRConfig(chunk_size=4, memo=memo_cfg()),
                          admm=ADMM, ops=ops, encoder=cnn_encoder(seed=99))
        stale.load_memo_snapshot(tree)
        assert (
            stale.memo_executor.encoder.weights_digest()
            == first.memo_executor.encoder.weights_digest()
        )
        assert stale.memo_executor.db_entries_total() > 0

    def test_pool_snapshot_unaffected(self, problem, tmp_path):
        g, ops, d = problem
        solver = MLRSolver(g, MLRConfig(chunk_size=4), admm=ADMM, ops=ops)
        solver.reconstruct(d)
        path = tmp_path / "pool-snap"
        solver.save_memo_snapshot(path)
        assert not (path / "encoder").exists()
        warm = MLRSolver(g, MLRConfig(chunk_size=4, memo_snapshot=path),
                         admm=ADMM, ops=ops)
        assert warm.memo_executor.db_entries_total() > 0
