"""Snapshot layer: versioned on-disk round trips, bit-identical restores."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.ann import FlatIndex, HNSWIndex, IVFFlatIndex
from repro.core import CNNKeyEncoder, MemoDatabase
from repro.kvstore import ArrayStore, KVStore, encode_array, store_from_state
from repro.nn import ChunkEncoder
from repro.service import (
    SnapshotError,
    load_database,
    load_encoder,
    load_index,
    read_snapshot,
    save_database,
    save_encoder,
    save_index,
    write_snapshot,
)


def rand_keys(n: int, dim: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((n, dim)).astype(np.float32)


def outcomes_equal(a, b) -> None:
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.similarity == y.similarity
        assert x.matched_id == y.matched_id
        assert x.n_entries == y.n_entries
        assert (x.value is None) == (y.value is None)
        assert x.stored_meta == y.stored_meta
        if x.value is not None:
            assert x.value.dtype == y.value.dtype
            assert np.array_equal(x.value, y.value)


# -- the container format ---------------------------------------------------------------


class TestContainer:
    def test_round_trip_preserves_structure(self, tmp_path):
        tree = {
            "i": 3,
            "f": 0.1,
            "s": "x",
            "none": None,
            "flag": True,
            "arr": np.arange(6, dtype=np.complex64).reshape(2, 3),
            "blob": b"\x00\x01\xff",
            "nested": {"list": [1, {"a": np.ones(2, dtype=np.float32)}, "z"]},
        }
        write_snapshot(tmp_path / "s", tree, kind="test")
        back = read_snapshot(tmp_path / "s", expect_kind="test")
        assert back["i"] == 3 and back["f"] == 0.1 and back["s"] == "x"
        assert back["none"] is None and back["flag"] is True
        assert back["arr"].dtype == np.complex64
        assert np.array_equal(back["arr"], tree["arr"])
        assert back["blob"] == b"\x00\x01\xff"
        assert np.array_equal(back["nested"]["list"][1]["a"], np.ones(2))

    def test_kind_and_version_checked(self, tmp_path):
        write_snapshot(tmp_path / "s", {"x": 1}, kind="test")
        with pytest.raises(SnapshotError, match="kind"):
            read_snapshot(tmp_path / "s", expect_kind="other")
        manifest_path = tmp_path / "s" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="version"):
            read_snapshot(tmp_path / "s")

    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot"):
            read_snapshot(tmp_path / "nope")

    def test_corruption_detected(self, tmp_path):
        write_snapshot(tmp_path / "s", {"arr": np.arange(128.0)}, kind="test")
        manifest_path = tmp_path / "s" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        name = next(iter(manifest["arrays"]))
        manifest["arrays"][name]["sha256"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(tmp_path / "s")
        # but verification can be bypassed explicitly
        assert read_snapshot(tmp_path / "s", verify=False)["arr"].shape == (128,)

    def test_unserializable_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="unserializable"):
            write_snapshot(tmp_path / "s", {"bad": object()}, kind="test")


# -- ANN indexes ------------------------------------------------------------------------


class TestIndexRoundTrips:
    dim = 12

    def queries(self):
        return rand_keys(9, self.dim, seed=99)

    def assert_search_identical(self, live, restored, k=3):
        d1, i1 = live.search(self.queries(), k=k)
        d2, i2 = restored.search(self.queries(), k=k)
        assert np.array_equal(d1, d2) and d1.dtype == d2.dtype
        assert np.array_equal(i1, i2)

    def test_flat(self, tmp_path):
        ix = FlatIndex(self.dim)
        ix.add(rand_keys(40, self.dim))
        save_index(tmp_path / "ix", ix)
        restored = load_index(tmp_path / "ix")
        assert isinstance(restored, FlatIndex)
        assert len(restored) == len(ix)
        assert restored.n_distance_computations == ix.n_distance_computations
        self.assert_search_identical(ix, restored)

    def test_ivf_trained(self, tmp_path):
        ix = IVFFlatIndex(self.dim, n_clusters=5, nprobe=2)
        ix.train(rand_keys(50, self.dim, seed=1))
        ix.add(rand_keys(80, self.dim, seed=2))
        save_index(tmp_path / "ix", ix)
        restored = load_index(tmp_path / "ix")
        assert restored.is_trained and len(restored) == len(ix)
        assert np.array_equal(restored.centroids, ix.centroids)
        assert restored.list_sizes() == ix.list_sizes()
        self.assert_search_identical(ix, restored)
        # dynamic insertion continues identically (same ids, same lists)
        more = rand_keys(7, self.dim, seed=3)
        assert np.array_equal(ix.add(more), restored.add(more))
        self.assert_search_identical(ix, restored)

    def test_ivf_untrained_mid_training(self, tmp_path):
        """An IVF snapshotted before its quantizer is trained restores as
        untrained and trains later exactly like the live instance."""
        ix = IVFFlatIndex(self.dim, n_clusters=4, nprobe=2)
        save_index(tmp_path / "ix", ix)
        restored = load_index(tmp_path / "ix")
        assert not restored.is_trained
        with pytest.raises(RuntimeError):
            restored.search(self.queries())
        samples = rand_keys(30, self.dim, seed=4)
        ix.train(samples)
        restored.train(samples)
        assert np.array_equal(ix.centroids, restored.centroids)
        added = rand_keys(20, self.dim, seed=5)
        ix.add(added)
        restored.add(added)
        self.assert_search_identical(ix, restored)

    def test_hnsw(self, tmp_path):
        ix = HNSWIndex(self.dim, m=4, ef_construction=16, ef_search=8, seed=3)
        ix.add(rand_keys(60, self.dim, seed=6))
        save_index(tmp_path / "ix", ix)
        restored = load_index(tmp_path / "ix")
        assert len(restored) == len(ix)
        assert restored.n_edge_updates == ix.n_edge_updates
        self.assert_search_identical(ix, restored, k=2)
        # the level RNG travels along: future inserts rewire identically
        more = rand_keys(10, self.dim, seed=7)
        ix.add(more)
        restored.add(more)
        assert ix._levels == restored._levels
        assert ix._edges == restored._edges
        self.assert_search_identical(ix, restored, k=2)

    def test_empty_indexes(self, tmp_path):
        for ix in (FlatIndex(4), HNSWIndex(4)):
            save_index(tmp_path / "e", ix)
            restored = load_index(tmp_path / "e")
            d, i = restored.search(np.zeros((1, 4), dtype=np.float32), k=2)
            assert np.all(np.isinf(d)) and np.all(i == -1)

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="unknown index type"):
            save_index(tmp_path / "ix", object())


# -- key-value stores -------------------------------------------------------------------


class TestStoreRoundTrips:
    def test_bytes_store(self):
        store = KVStore(capacity_bytes=64, eviction="lru")
        store.put(1, b"abc")
        store.put("two", b"d" * 10)
        store.get(1)
        store.get("missing")
        restored = store_from_state(store.state_dict())
        assert isinstance(restored, KVStore) and not isinstance(restored, ArrayStore)
        assert restored.keys() == store.keys()
        assert restored.nbytes == store.nbytes
        assert restored.get(1) == b"abc" and restored.get("two") == b"d" * 10
        assert restored.stats.hits == store.stats.hits + 2

    def test_array_store_values_read_only(self):
        store = ArrayStore()
        a = np.arange(6, dtype=np.complex64).reshape(2, 3)
        store.put(0, a)
        restored = store_from_state(store.state_dict())
        assert isinstance(restored, ArrayStore)
        got = restored.get(0)
        assert np.array_equal(got, a) and got.dtype == a.dtype
        assert not got.flags.writeable
        assert restored.nbytes == store.nbytes == len(encode_array(a))

    def test_eviction_order_preserved(self):
        """Entry order *is* the FIFO eviction order; a restored store must
        evict the same keys the live one would."""
        payload = b"x" * 10
        live = KVStore(capacity_bytes=30)
        for k in range(3):
            live.put(k, payload)
        restored = KVStore.from_state(live.state_dict())
        live.put(99, payload)
        restored.put(99, payload)
        assert live.keys() == restored.keys() == [1, 2, 99]

    def test_wrong_type_tag_rejected(self):
        state = ArrayStore().state_dict()
        with pytest.raises(ValueError, match="store"):
            KVStore.from_state(state)
        state["store_type"] = "martian"
        with pytest.raises(ValueError, match="unknown store_type"):
            store_from_state(state)


# -- the INT8-quantized key encoder -----------------------------------------------------


class TestEncoderRoundTrip:
    def test_quantized_cnn_encoder(self, tmp_path):
        enc = CNNKeyEncoder(ChunkEncoder(input_hw=8, embed_dim=10, seed=5),
                            quantized=True)
        save_encoder(tmp_path / "enc", enc)
        restored = load_encoder(tmp_path / "enc")
        assert restored.quantized and restored.dim == enc.dim
        rng = np.random.default_rng(2)
        chunk = (rng.standard_normal((3, 8, 8))
                 + 1j * rng.standard_normal((3, 8, 8))).astype(np.complex64)
        assert np.array_equal(enc.encode(chunk), restored.encode(chunk))
        # the INT8 tensors are a deterministic function of the float weights
        for (k1, _m1, w1, b1), (k2, _m2, w2, b2) in zip(
            enc._enc._layers, restored._enc._layers
        ):
            assert k1 == k2
            if w1 is not None:
                assert np.array_equal(w1.q, w2.q) and w1.scale == w2.scale
                assert np.array_equal(b1, b2)

    def test_float_encoder_flag(self, tmp_path):
        enc = CNNKeyEncoder(ChunkEncoder(input_hw=8, embed_dim=6, seed=1),
                            quantized=False)
        save_encoder(tmp_path / "enc", enc)
        assert not load_encoder(tmp_path / "enc").quantized

    def test_wrong_object_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="CNNKeyEncoder"):
            save_encoder(tmp_path / "enc", ChunkEncoder(input_hw=8))


# -- the memoization database -----------------------------------------------------------


def populated_db(value_mode: str, n: int, dim: int = 8, train_min: int = 6):
    rng = np.random.default_rng(7)
    db = MemoDatabase(dim=dim, tau=0.9, index_clusters=3, index_nprobe=2,
                      train_min=train_min, value_mode=value_mode)
    for i in range(n):
        k = rng.standard_normal(dim).astype(np.float32)
        v = (rng.standard_normal((3, 4))
             + 1j * rng.standard_normal((3, 4))).astype(np.complex64)
        meta = (float(np.abs(k).sum()), complex(rng.standard_normal(),
                                                rng.standard_normal()))
        db.insert(k, v, meta=meta if i % 3 else None)
    return db


def probe_keys(db: MemoDatabase, dim: int = 8):
    rng = np.random.default_rng(13)
    probes = [np.array(k, copy=True) for k in db._keys.values()]
    probes += [k + rng.normal(0, 1e-3, k.shape).astype(np.float32)
               for k in probes[:6]]
    probes += [rng.standard_normal(dim).astype(np.float32) for _ in range(6)]
    probes.append(np.zeros(dim, dtype=np.float32))
    return probes


class TestDatabaseRoundTrips:
    @pytest.mark.parametrize("value_mode", ["array", "bytes"])
    def test_trained_db_bit_identical(self, tmp_path, value_mode):
        db = populated_db(value_mode, n=25)
        assert db.index.is_trained
        save_database(tmp_path / "db", db)
        restored = load_database(tmp_path / "db")
        assert restored.value_mode == value_mode
        assert len(restored) == len(db)
        assert db.stats.as_dict() == restored.stats.as_dict()
        probes = probe_keys(db)
        outcomes_equal(db.query_batch(probes), restored.query_batch(probes))
        outcomes_equal([db.query(k) for k in probes[:5]],
                       [restored.query(k) for k in probes[:5]])
        assert db.stats.as_dict() == restored.stats.as_dict()
        assert sum(o.hit for o in restored.query_batch(probes[:len(db._keys)])) > 0

    @pytest.mark.parametrize("value_mode", ["array", "bytes"])
    def test_mid_training_db_bit_identical(self, tmp_path, value_mode):
        """Snapshotted before the IVF quantizer trains: the pretrain scan
        must answer identically, and later training must proceed
        identically."""
        db = populated_db(value_mode, n=4, train_min=32)
        assert not db.index.is_trained and len(db._pretrain) == 4
        save_database(tmp_path / "db", db)
        restored = load_database(tmp_path / "db")
        assert not restored.index.is_trained
        assert len(restored._pretrain) == len(db._pretrain)
        probes = probe_keys(db)
        outcomes_equal(db.query_batch(probes), restored.query_batch(probes))
        # inserting up to train_min trains both identically
        rng = np.random.default_rng(3)
        items = [
            (rng.standard_normal(8).astype(np.float32),
             np.ones((2, 2), dtype=np.complex64), None)
            for _ in range(40)
        ]
        assert db.insert_batch(items) == restored.insert_batch(items)
        assert db.index.is_trained and restored.index.is_trained
        outcomes_equal(db.query_batch(probes), restored.query_batch(probes))

    def test_empty_db_round_trip(self, tmp_path):
        db = MemoDatabase(dim=8, tau=0.92)
        save_database(tmp_path / "db", db)
        restored = load_database(tmp_path / "db")
        assert len(restored) == 0
        probes = [np.ones(8, dtype=np.float32), np.zeros(8, dtype=np.float32)]
        outcomes_equal(db.query_batch(probes), restored.query_batch(probes))
        assert all(not o.hit for o in restored.query_batch(probes))

    def test_value_mode_mismatch_rejected(self, tmp_path):
        db = populated_db("array", n=10)
        state = db.state_dict()
        state["config"]["value_mode"] = "bytes"
        with pytest.raises(ValueError, match="value store"):
            MemoDatabase.from_state(state)

    def test_opaque_meta_rejected(self):
        db = MemoDatabase(dim=4, tau=0.9)
        db.insert(np.ones(4, dtype=np.float32), np.ones(2, dtype=np.complex64),
                  meta=object())
        with pytest.raises(TypeError, match="pair"):
            db.state_dict()

    def test_snapshot_files_exist(self, tmp_path):
        save_database(tmp_path / "db", populated_db("array", n=10))
        assert os.path.isfile(tmp_path / "db" / "manifest.json")
        assert os.path.isfile(tmp_path / "db" / "arrays.npz")
