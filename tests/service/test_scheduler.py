"""Scheduler: concurrency, priority + FIFO, cancellation, admission, sharing."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import MemoConfig, MLRConfig
from repro.lamino import LaminoGeometry, brain_like, simulate_data
from repro.service import (
    AdmissionError,
    JobSpec,
    JobState,
    ReconstructionScheduler,
    ServiceConfig,
    SharedMemoService,
)
from repro.solvers import ADMMConfig

WAIT = 120.0  # generous per-job timeout; tiny jobs run in well under a second


@pytest.fixture(scope="module")
def problem():
    n = 12
    geometry = LaminoGeometry((n, n, n), n_angles=8, det_shape=(n, n), tilt_deg=61.0)
    data = simulate_data(brain_like(geometry.vol_shape, seed=7), geometry,
                         noise_level=0.02, seed=1)
    return geometry, data


def spec(problem, name: str, priority: int = 0, n_outer: int = 2, projections=None,
         **spec_over) -> JobSpec:
    geometry, data = problem
    return JobSpec(
        name=name,
        geometry=geometry,
        projections=data if projections is None else projections,
        config=MLRConfig(
            chunk_size=4,
            memo=MemoConfig(tau=0.9, warmup_iterations=1, index_train_min=8,
                            index_clusters=4, index_nprobe=2),
        ),
        admm=ADMMConfig(n_outer=n_outer, n_inner=2, step_max_rel=4.0),
        priority=priority,
        **spec_over,
    )


class Gate:
    """A projections source that parks the job until released (and reports
    that the job reached its worker)."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = data
        self.entered = threading.Event()
        self.release = threading.Event()

    def __call__(self) -> np.ndarray:
        self.entered.set()
        assert self.release.wait(WAIT), "gate never released"
        return self.data


class TestSchedulingPolicy:
    def test_three_concurrent_jobs(self, problem):
        """>= 3 jobs genuinely in flight at once: every job blocks on a
        shared barrier that only opens when all three are running."""
        _geometry, data = problem
        barrier = threading.Barrier(3, timeout=WAIT)

        def source() -> np.ndarray:
            barrier.wait()
            return data

        with ReconstructionScheduler(ServiceConfig(n_workers=3)) as sched:
            handles = [
                sched.submit(spec(problem, f"concurrent-{i}", projections=source))
                for i in range(3)
            ]
            for h in handles:
                assert h.wait(WAIT)
        assert all(h.state is JobState.DONE for h in handles)
        assert all(h.result is not None and h.result.u.shape == (12, 12, 12)
                   for h in handles)
        assert sched.stats.peak_running == 3
        assert sched.stats.completed == 3

    def test_priority_order_with_fifo_ties(self, problem):
        """One worker, gated first job: the backlog must run highest
        priority first and break ties in submission order."""
        _geometry, data = problem
        gate = Gate(data)
        order: list[str] = []
        lock = threading.Lock()

        def tracking_source(name: str):
            def source() -> np.ndarray:
                with lock:
                    order.append(name)
                return data
            return source

        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            first = sched.submit(spec(problem, "gate", projections=gate))
            assert gate.entered.wait(WAIT)
            handles = [
                sched.submit(spec(problem, name, priority=prio,
                                  projections=tracking_source(name)))
                for name, prio in [
                    ("low-a", 0), ("high", 5), ("mid", 3), ("low-b", 0),
                ]
            ]
            gate.release.set()
            for h in [first, *handles]:
                assert h.wait(WAIT)
        assert order == ["high", "mid", "low-a", "low-b"]
        assert [h.state for h in handles] == [JobState.DONE] * 4

    def test_admission_control_rejects_beyond_depth(self, problem):
        _geometry, data = problem
        gate = Gate(data)
        with ReconstructionScheduler(
            ServiceConfig(n_workers=1, max_queue_depth=2)
        ) as sched:
            running = sched.submit(spec(problem, "gate", projections=gate))
            assert gate.entered.wait(WAIT)
            q1 = sched.submit(spec(problem, "q1"))
            q2 = sched.submit(spec(problem, "q2"))
            with pytest.raises(AdmissionError, match="depth limit 2"):
                sched.submit(spec(problem, "overflow"))
            assert sched.stats.rejected == 1
            # rejection is not sticky: queue drains, admission reopens
            gate.release.set()
            assert q1.wait(WAIT) and q2.wait(WAIT)
            late = sched.submit(spec(problem, "late"))
            assert late.wait(WAIT)
        assert running.state is JobState.DONE and late.state is JobState.DONE
        assert sched.stats.submitted == 4  # the rejected spec was never a job

    def test_depth_zero_requires_idle_worker(self, problem):
        _geometry, data = problem
        gate = Gate(data)
        with ReconstructionScheduler(
            ServiceConfig(n_workers=1, max_queue_depth=0)
        ) as sched:
            running = sched.submit(spec(problem, "gate", projections=gate))
            assert gate.entered.wait(WAIT)
            with pytest.raises(AdmissionError):
                sched.submit(spec(problem, "nope"))
            gate.release.set()
            assert running.wait(WAIT)

    def test_submit_after_shutdown_raises(self, problem):
        sched = ReconstructionScheduler(ServiceConfig(n_workers=1))
        sched.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            sched.submit(spec(problem, "late"))


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, problem):
        _geometry, data = problem
        gate = Gate(data)
        ran = threading.Event()

        def must_not_run() -> np.ndarray:
            ran.set()
            return data

        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            first = sched.submit(spec(problem, "gate", projections=gate))
            assert gate.entered.wait(WAIT)
            queued = sched.submit(spec(problem, "victim", projections=must_not_run))
            assert queued.state is JobState.QUEUED
            assert queued.cancel()
            assert queued.state is JobState.CANCELLED  # immediate, pre-run
            assert queued.wait(0.0)
            gate.release.set()
            assert first.wait(WAIT)
        assert not ran.is_set()
        assert queued.result is None
        assert sched.stats.cancelled == 1
        assert not queued.cancel(), "cancelling a terminal job is a no-op"

    def test_cancel_running_job_unwinds_at_next_iteration(self, problem):
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            handle = sched.submit(spec(problem, "long", n_outer=400))
            # wait for real progress, then cancel mid-run
            deadline = threading.Event()
            for _ in range(int(WAIT * 100)):
                if handle.iterations >= 1:
                    break
                deadline.wait(0.01)
            assert handle.iterations >= 1, "job never reported an iteration"
            assert handle.cancel()
            assert handle.wait(WAIT)
        assert handle.state is JobState.CANCELLED
        assert handle.result is None
        assert handle.iterations < 400, "cancellation should cut the run short"
        kinds = [ev.kind for ev in handle.events]
        assert "cancel_requested" in kinds and "cancelled" in kinds

    def test_cancelled_queued_jobs_free_admission_slots(self, problem):
        """Dead heap entries (cancelled while queued, not yet popped) must
        not count against max_queue_depth or queue_depth()."""
        _geometry, data = problem
        gate = Gate(data)
        with ReconstructionScheduler(
            ServiceConfig(n_workers=1, max_queue_depth=2)
        ) as sched:
            running = sched.submit(spec(problem, "gate", projections=gate))
            assert gate.entered.wait(WAIT)
            q1 = sched.submit(spec(problem, "q1"))
            q2 = sched.submit(spec(problem, "q2"))
            assert sched.queue_depth() == 2
            q1.cancel()
            q2.cancel()
            assert sched.queue_depth() == 0
            replacement = sched.submit(spec(problem, "replacement"))
            gate.release.set()
            assert running.wait(WAIT) and replacement.wait(WAIT)
        assert replacement.state is JobState.DONE
        assert sched.stats.cancelled == 2

    def test_shutdown_cancel_pending(self, problem):
        _geometry, data = problem
        gate = Gate(data)
        sched = ReconstructionScheduler(ServiceConfig(n_workers=1))
        first = sched.submit(spec(problem, "gate", projections=gate))
        assert gate.entered.wait(WAIT)
        pending = [sched.submit(spec(problem, f"pending-{i}")) for i in range(3)]
        gate.release.set()
        sched.shutdown(wait=True, cancel_pending=True)
        assert first.state is JobState.DONE
        assert all(h.state is JobState.CANCELLED for h in pending)
        assert sched.stats.cancelled == 3


class TestJobLifecycle:
    def test_failure_is_contained(self, problem):
        def explode() -> np.ndarray:
            raise OSError("scan file vanished")

        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            bad = sched.submit(spec(problem, "bad", projections=explode))
            good = sched.submit(spec(problem, "good"))
            assert bad.wait(WAIT) and good.wait(WAIT)
        assert bad.state is JobState.FAILED
        assert isinstance(bad.error, OSError)
        assert good.state is JobState.DONE
        assert sched.stats.failed == 1 and sched.stats.completed == 1

    def test_events_and_iterations_captured(self, problem):
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            handle = sched.submit(spec(problem, "traced", n_outer=3))
            assert handle.wait(WAIT)
        kinds = [ev.kind for ev in handle.events]
        assert kinds[0] == "submitted" and kinds[-1] == "done"
        assert "running" in kinds
        assert kinds.count("iteration") == 3
        assert handle.iterations == 3
        times = [ev.t for ev in handle.events]
        assert times == sorted(times)

    def test_bad_projections_type_fails(self, problem):
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            handle = sched.submit(
                spec(problem, "badtype", projections=lambda: "not an array")
            )
            assert handle.wait(WAIT)
        assert handle.state is JobState.FAILED
        assert isinstance(handle.error, TypeError)


class TestSharedMemo:
    def test_cross_job_warm_start_through_service(self, problem):
        """Job N+1 starts from job N's database: its hit-rate delta beats
        the same scan reconstructed cold."""
        geometry, data = problem
        with ReconstructionScheduler(
            ServiceConfig(n_workers=1, share_memo=True)
        ) as sched:
            first = sched.submit(spec(problem, "scan-1"))
            second = sched.submit(spec(problem, "scan-2"))
            assert first.wait(WAIT) and second.wait(WAIT)
        assert first.memo_delta is not None and second.memo_delta is not None
        assert second.db_entries_start > 0, "job 2 must start from job 1's tier"
        assert first.db_entries_start == 0
        assert second.memo_delta.hit_rate > first.memo_delta.hit_rate
        assert any(ev.kind == "warm_start" for ev in second.events)
        assert sched.memo_service.generation == 2

    def test_share_memo_off_isolates_jobs(self, problem):
        with ReconstructionScheduler(
            ServiceConfig(n_workers=1, share_memo=False)
        ) as sched:
            first = sched.submit(spec(problem, "iso-1"))
            second = sched.submit(spec(problem, "iso-2"))
            assert first.wait(WAIT) and second.wait(WAIT)
        assert second.db_entries_start == 0
        assert sched.memo_service.state() is None

    def test_absorb_merges_concurrent_completions(self, problem):
        """Two jobs that both started cold must not wipe each other's
        partitions when they absorb: the union survives, newest first."""
        a = {"layout": "single", "encoder": None, "partitions": [
            {"op": "Fu1D", "location": 0, "db": "A0"},
            {"op": "Fu1D", "location": 1, "db": "A1"},
        ]}
        b = {"layout": "single", "encoder": None, "partitions": [
            {"op": "Fu1D", "location": 1, "db": "B1"},
            {"op": "Fu2D", "location": 2, "db": "B2"},
        ]}
        merged = SharedMemoService._merged(a, b)
        got = {(p["op"], p["location"]): p["db"] for p in merged["partitions"]}
        assert got == {("Fu1D", 0): "A0",   # only in the earlier tree: kept
                       ("Fu1D", 1): "B1",   # conflict: newest wins
                       ("Fu2D", 2): "B2"}
        # the chained case (new subsumes old) keeps the new tree verbatim
        assert SharedMemoService._merged(a, merged) is merged
        assert SharedMemoService._merged(None, a) is a

    def test_per_job_snapshot_takes_precedence_over_shared_seed(
        self, problem, tmp_path
    ):
        """A job with an explicit memo_snapshot must get exactly that
        snapshot — the shared tier must not be seeded on top of it."""
        geometry, data = problem
        with ReconstructionScheduler(
            ServiceConfig(n_workers=1, share_memo=True)
        ) as sched:
            first = sched.submit(spec(problem, "builder"))
            assert first.wait(WAIT)
            sched.memo_service.save(tmp_path / "snap")
            explicit = spec(problem, "explicit")
            explicit.config.memo_snapshot = str(tmp_path / "snap")
            second = sched.submit(explicit)
            assert second.wait(WAIT)
        assert second.state is JobState.DONE
        # warm via its own snapshot (entries present), not via the service
        assert second.db_entries_start > 0
        assert not any(ev.kind == "warm_start" for ev in second.events)

    def test_memo_service_snapshot_round_trip(self, problem, tmp_path):
        service = SharedMemoService()
        with pytest.raises(ValueError, match="cold"):
            service.save(tmp_path / "m")
        with ReconstructionScheduler(
            ServiceConfig(n_workers=1), memo_service=service
        ) as sched:
            handle = sched.submit(spec(problem, "persist"))
            assert handle.wait(WAIT)
        service.save(tmp_path / "m")
        reloaded = SharedMemoService()
        reloaded.load(tmp_path / "m")
        tree = reloaded.state()
        assert tree is not None and tree["partitions"]
        # a scheduler booted from the restored service warm-starts its jobs
        with ReconstructionScheduler(
            ServiceConfig(n_workers=1), memo_service=reloaded
        ) as sched2:
            warm = sched2.submit(spec(problem, "after-restart"))
            assert warm.wait(WAIT)
        assert warm.db_entries_start > 0
        assert warm.memo_delta.hits > 0


class TestValidation:
    def test_service_config_knobs(self):
        with pytest.raises(ValueError, match="n_workers"):
            ServiceConfig(n_workers=0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            ServiceConfig(max_queue_depth=-1)
        ServiceConfig(max_queue_depth=0)  # "never queue" is a valid policy

    def test_job_spec_validation(self, problem):
        geometry, data = problem
        ok = dict(geometry=geometry, projections=data)
        with pytest.raises(ValueError, match="name"):
            JobSpec(name="", **ok)
        with pytest.raises(ValueError, match="geometry"):
            JobSpec(name="j", geometry="geo", projections=data)
        with pytest.raises(ValueError, match="projections"):
            JobSpec(name="j", geometry=geometry, projections=[1, 2])
        with pytest.raises(ValueError, match="config"):
            JobSpec(name="j", config={"chunk_size": 4}, **ok)
        with pytest.raises(ValueError, match="admm"):
            JobSpec(name="j", admm=object(), **ok)
        with pytest.raises(ValueError, match="priority"):
            JobSpec(name="j", priority=1.5, **ok)
        with pytest.raises(ValueError, match="priority"):
            JobSpec(name="j", priority=True, **ok)

    def test_submit_rejects_non_spec(self, problem):
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            with pytest.raises(ValueError, match="JobSpec"):
                sched.submit("not a spec")


class TestTelemetryPlane:
    """ServiceConfig(telemetry_port=...): the scheduler's live HTTP plane.

    Acceptance: /readyz flips 503 <-> 200 on queue saturation and
    recovery, and the bind address is validated like the memo daemon's."""

    @staticmethod
    def _get(url: str):
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(url, timeout=5.0) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as err:
            return err.code, err.read()

    def test_readyz_flips_on_saturation_then_recovers(self, problem):
        import json
        import time
        import urllib.request

        _geometry, data = problem
        gate = Gate(data)
        with ReconstructionScheduler(
            ServiceConfig(n_workers=1, max_queue_depth=0, telemetry_port=0)
        ) as sched:
            base = sched.telemetry.url
            status, body = self._get(base + "/readyz")
            assert (status, json.loads(body)["ready"]) == (200, True)
            assert self._get(base + "/healthz") == (200, b"ok\n")

            running = sched.submit(spec(problem, "gate", projections=gate))
            assert gate.entered.wait(WAIT)
            # the lone worker is busy and depth is 0: one more submit
            # would bounce, so readiness must report saturated
            status, body = self._get(base + "/readyz")
            payload = json.loads(body)
            assert status == 503 and payload["ready"] is False
            assert payload["probes"]["queue"]["ok"] is False
            assert "saturated" in payload["probes"]["queue"]["detail"]
            assert payload["probes"]["accepting"]["ok"] is True
            assert payload["probes"]["memo_tier"]["ok"] is True

            gate.release.set()
            assert running.wait(WAIT)
            deadline = time.monotonic() + WAIT
            while time.monotonic() < deadline:  # worker going idle races us
                status, _ = self._get(base + "/readyz")
                if status == 200:
                    break
                time.sleep(0.02)
            assert status == 200
        # shutdown tears the plane down with the scheduler
        with pytest.raises(OSError):
            urllib.request.urlopen(base + "/healthz", timeout=1.0)

    def test_metrics_scrape_carries_scheduler_gauges(self, problem):
        import repro.obs as obs
        from repro.obs import ObsConfig

        obs.configure(ObsConfig(enabled=True))
        try:
            with ReconstructionScheduler(
                ServiceConfig(n_workers=1, telemetry_port=0)
            ) as sched:
                handle = sched.submit(spec(problem, "scraped"))
                assert handle.wait(WAIT)
                status, body = self._get(sched.telemetry.url + "/metrics")
            assert status == 200
            text = body.decode("utf-8")
            assert "scheduler_queue_depth 0" in text
            assert "scheduler_running 0" in text
            assert "scheduler_submitted 1" in text
        finally:
            obs.reset()

    def test_bind_address_validated_like_memo_daemon(self):
        from repro.net.wire import parse_address

        with pytest.raises(ValueError) as err:
            ServiceConfig(telemetry_port="not-a-port")
        try:
            parse_address(("127.0.0.1", "not-a-port"))
        except ValueError as exc:
            expected = str(exc)
        assert str(err.value) == expected
