"""Scheduler-level job retry under the unified retry policy semantics.

``JobSpec(max_retries=N)``: a failed attempt is retried up to N times on
the same handle — one event log spanning every attempt, each retry
re-seeding from the shared tier so earlier work carries forward — while
cancellation stays terminal (never retried) and the final failure keeps
the original exception.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import MemoConfig, MLRConfig, MLRSolver
from repro.lamino import LaminoGeometry, brain_like, simulate_data
from repro.obs import ObsConfig
from repro.obs import runtime as obs
from repro.service import (
    JobSpec,
    JobState,
    ReconstructionScheduler,
    ServiceConfig,
)
from repro.solvers import ADMMConfig

WAIT = 120.0
MEMO = dict(tau=0.9, warmup_iterations=1, index_train_min=8,
            index_clusters=4, index_nprobe=2)
ADMM = ADMMConfig(n_outer=2, n_inner=2, step_max_rel=4.0)


@pytest.fixture(autouse=True)
def pristine_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def problem():
    n = 12
    geometry = LaminoGeometry((n, n, n), n_angles=8, det_shape=(n, n), tilt_deg=61.0)
    data = simulate_data(brain_like(geometry.vol_shape, seed=7), geometry,
                         noise_level=0.02, seed=1)
    return geometry, data


class Flaky:
    """A projections source that fails its first ``failures`` calls —
    the transient-beamline-storage model the retry knob exists for."""

    def __init__(self, data: np.ndarray, failures: int) -> None:
        self.data = data
        self.failures = failures
        self.calls = 0

    def __call__(self) -> np.ndarray:
        self.calls += 1
        if self.calls <= self.failures:
            raise OSError(f"scan volume unavailable (attempt {self.calls})")
        return self.data


def spec(problem, name: str, projections=None, **over) -> JobSpec:
    geometry, data = problem
    return JobSpec(
        name=name, geometry=geometry,
        projections=data if projections is None else projections,
        config=MLRConfig(chunk_size=4, memo=MemoConfig(**MEMO)),
        admm=ADMM, **over,
    )


def kinds(handle) -> list[str]:
    return [ev.kind for ev in handle.events]


class TestRetrySucceeds:
    def test_flaky_job_retries_to_done_on_one_event_log(self, problem):
        obs.configure(ObsConfig())
        _geometry, data = problem
        flaky = Flaky(data, failures=2)
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            handle = sched.submit(
                spec(problem, "flaky", projections=flaky, max_retries=3)
            )
            assert handle.wait(WAIT)
        assert handle.state is JobState.DONE
        assert flaky.calls == 3
        ks = kinds(handle)
        # the whole saga lives on one handle: two failures, two retries,
        # then the successful attempt's full lifecycle
        assert ks.count("attempt_failed") == 2
        assert ks.count("retry") == 2
        assert ks[0] == "submitted" and ks[-1] == "done"
        retries = sum(
            e["value"] for e in obs.snapshot() if e["name"] == "job_retries_total"
        )
        assert retries == 2
        assert sched.stats.completed == 1 and sched.stats.failed == 0

    def test_retry_reseeds_from_shared_tier(self, problem):
        """The retried attempt warm-starts from work absorbed before it —
        a retry resumes the tier, it does not restart the world."""
        _geometry, data = problem
        flaky = Flaky(data, failures=1)
        with ReconstructionScheduler(
            ServiceConfig(n_workers=1, share_memo=True)
        ) as sched:
            builder = sched.submit(spec(problem, "builder"))
            assert builder.wait(WAIT)
            retried = sched.submit(
                spec(problem, "retried", projections=flaky, max_retries=1)
            )
            assert retried.wait(WAIT)
        assert retried.state is JobState.DONE
        assert "warm_start" in kinds(retried)
        assert retried.db_entries_start > 0


class TestRetryExhausts:
    def test_exhausted_retries_fail_with_original_error(self, problem):
        _geometry, data = problem
        flaky = Flaky(data, failures=10)
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            handle = sched.submit(
                spec(problem, "doomed", projections=flaky, max_retries=2)
            )
            assert handle.wait(WAIT)
        assert handle.state is JobState.FAILED
        assert isinstance(handle.error, OSError)
        assert flaky.calls == 3  # 1 try + 2 retries, then give up
        ks = kinds(handle)
        assert ks.count("retry") == 2
        # the terminal failure is the finish event, not another attempt_failed
        assert ks.count("attempt_failed") == 2
        assert sched.stats.failed == 1

    def test_default_is_no_retry(self, problem):
        _geometry, data = problem
        flaky = Flaky(data, failures=1)
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            handle = sched.submit(spec(problem, "one-shot", projections=flaky))
            assert handle.wait(WAIT)
        assert handle.state is JobState.FAILED
        assert flaky.calls == 1
        assert "retry" not in kinds(handle)


class TestCancellationIsTerminal:
    def test_cancel_mid_run_is_never_retried(self, problem):
        geometry, data = problem
        long_spec = JobSpec(
            name="cancel-me", geometry=geometry, projections=data,
            config=MLRConfig(chunk_size=4, memo=MemoConfig(**MEMO)),
            admm=ADMMConfig(n_outer=400, n_inner=2, step_max_rel=4.0),
            max_retries=5,
        )
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            handle = sched.submit(long_spec)
            waiter = threading.Event()
            for _ in range(int(WAIT * 100)):
                if handle.iterations >= 1:
                    break
                waiter.wait(0.01)
            assert handle.iterations >= 1
            assert handle.cancel()
            assert handle.wait(WAIT)
        assert handle.state is JobState.CANCELLED
        assert "retry" not in kinds(handle)
        assert sched.stats.cancelled == 1 and sched.stats.failed == 0


class TestValidation:
    def test_max_retries_validation(self, problem):
        geometry, data = problem
        ok = dict(geometry=geometry, projections=data)
        with pytest.raises(ValueError, match="max_retries"):
            JobSpec(name="j", max_retries=-1, **ok)
        with pytest.raises(ValueError, match="max_retries"):
            JobSpec(name="j", max_retries=True, **ok)
        with pytest.raises(ValueError, match="max_retries"):
            JobSpec(name="j", max_retries=1.5, **ok)
        assert JobSpec(name="j", max_retries=0, **ok).max_retries == 0
