"""Executor-level memo-state snapshots and MLRConfig warm-start wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MemoConfig, MLRConfig, MLRSolver
from repro.lamino import LaminoGeometry, brain_like, simulate_data
from repro.service import install_memo_state, load_memo_snapshot, save_memo_snapshot
from repro.solvers import ADMMConfig

MEMO = dict(tau=0.9, warmup_iterations=1, index_train_min=8,
            index_clusters=4, index_nprobe=2)
ADMM = ADMMConfig(n_outer=4, n_inner=2, step_max_rel=4.0)


@pytest.fixture(scope="module")
def problem():
    n = 16
    geometry = LaminoGeometry((n, n, n), n_angles=12, det_shape=(n, n), tilt_deg=61.0)
    truth = brain_like(geometry.vol_shape, seed=7)
    d1 = simulate_data(truth, geometry, noise_level=0.02, seed=1)
    d2 = simulate_data(truth, geometry, noise_level=0.02, seed=2)
    return geometry, d1, d2


def config(**over) -> MLRConfig:
    return MLRConfig(chunk_size=4, memo=MemoConfig(**MEMO), **over)


@pytest.fixture(scope="module")
def first_job(problem):
    """A completed first reconstruction (single-layout executor)."""
    geometry, d1, _ = problem
    solver = MLRSolver(geometry, config(), admm=ADMM)
    solver.reconstruct(d1)
    return solver


class TestMemoState:
    def test_state_round_trip_preserves_everything(self, first_job, tmp_path):
        executor = first_job.memo_executor
        save_memo_snapshot(tmp_path / "m", executor)
        tree = load_memo_snapshot(tmp_path / "m")
        assert tree["layout"] == "single"
        assert len(tree["partitions"]) == sum(
            len(s.dbs) for s in executor._state.values()
        )
        fresh = MLRSolver(first_job.geometry, config(), admm=ADMM)
        fresh.memo_executor.load_memo_state(tree)
        assert fresh.memo_executor.db_entries_total() == executor.db_entries_total()
        assert (fresh.memo_executor.db_stats_total().as_dict()
                == executor.db_stats_total().as_dict())

    def test_warm_start_beats_cold(self, problem, first_job, tmp_path):
        """The acceptance bar: a second job warm-started from the first
        job's snapshot has a strictly higher db hit rate than its cold
        run."""
        geometry, _d1, d2 = problem
        cold = MLRSolver(geometry, config(), admm=ADMM)
        cold.reconstruct(d2)
        cold_rate = cold.executor.db_stats_total().hit_rate

        first_job.save_memo_snapshot(tmp_path / "m")
        warm = MLRSolver(geometry, config(memo_snapshot=str(tmp_path / "m")),
                         admm=ADMM)
        baseline = warm.executor.db_stats_total()
        warm.reconstruct(d2)
        delta = warm.executor.db_stats_total().delta(baseline)
        assert delta.queries > 0
        assert delta.hit_rate > cold_rate

    def test_in_memory_tree_accepted(self, problem, first_job):
        geometry, _d1, _d2 = problem
        tree = first_job.memo_executor.memo_state()
        warm = MLRSolver(geometry, config(memo_snapshot=tree), admm=ADMM)
        assert (warm.memo_executor.db_entries_total()
                == first_job.memo_executor.db_entries_total())

    def test_mismatched_tau_fails_fast(self, problem, first_job):
        geometry, _d1, _d2 = problem
        tree = first_job.memo_executor.memo_state()
        memo = MemoConfig(**{**MEMO, "tau": 0.95})
        with pytest.raises(ValueError, match="tau"):
            MLRSolver(geometry, MLRConfig(chunk_size=4, memo=memo,
                                          memo_snapshot=tree), admm=ADMM)

    def test_mismatched_value_mode_fails_fast(self, problem, first_job):
        geometry, _d1, _d2 = problem
        tree = first_job.memo_executor.memo_state()
        memo = MemoConfig(**{**MEMO, "db_value_mode": "bytes"})
        with pytest.raises(ValueError, match="value_mode"):
            MLRSolver(geometry, MLRConfig(chunk_size=4, memo=memo,
                                          memo_snapshot=tree), admm=ADMM)

    def test_unknown_op_fails_fast(self, problem, first_job):
        geometry, _d1, _d2 = problem
        tree = first_job.memo_executor.memo_state()
        memo = MemoConfig(**MEMO, memo_ops=("Fu1D",))
        with pytest.raises(ValueError, match="not memoized"):
            MLRSolver(geometry, MLRConfig(chunk_size=4, memo=memo,
                                          memo_snapshot=tree), admm=ADMM)

    def test_mismatched_encoder_fails_fast(self, problem, first_job):
        """Keys from a different encoder never tau-match, so loading a
        snapshot across encoder kinds (or key dims) must fail at load, not
        silently run at ~0% hit rate."""
        geometry, _d1, _d2 = problem
        tree = dict(first_job.memo_executor.memo_state())
        assert tree["encoder"]["kind"] == "PoolKeyEncoder"
        tree["encoder"] = {"kind": "CNNKeyEncoder", "dim": 60}
        with pytest.raises(ValueError, match="encoder"):
            MLRSolver(geometry, MLRConfig(chunk_size=4, memo=MemoConfig(**MEMO),
                                          memo_snapshot=tree), admm=ADMM)
        tree["encoder"] = {"kind": "PoolKeyEncoder", "dim": 2}
        with pytest.raises(ValueError, match="dimensionality"):
            MLRSolver(geometry, MLRConfig(chunk_size=4, memo=MemoConfig(**MEMO),
                                          memo_snapshot=tree), admm=ADMM)
        # provenance-free trees (bare router state) still load
        tree.pop("encoder")
        MLRSolver(geometry, MLRConfig(chunk_size=4, memo=MemoConfig(**MEMO),
                                      memo_snapshot=tree), admm=ADMM)


class TestShardedMemoState:
    @pytest.fixture(scope="class")
    def sharded_job(self, problem):
        geometry, d1, _ = problem
        solver = MLRSolver(geometry, config(n_workers=2, n_shards=2), admm=ADMM)
        solver.reconstruct(d1)
        return solver

    def test_per_shard_snapshot_layout(self, sharded_job, tmp_path):
        save_memo_snapshot(tmp_path / "m", sharded_job.memo_executor)
        tree = load_memo_snapshot(tmp_path / "m")
        assert tree["layout"] == "sharded" and tree["n_shards"] == 2
        assert len(tree["shards"]) == 2
        for shard_state, shard in zip(tree["shards"],
                                      sharded_job.memo_executor.router.shards):
            assert len(shard_state["partitions"]) == len(shard._dbs)
            assert shard_state["query_messages"] == shard.query_messages

    def test_sharded_restore_with_counters(self, problem, sharded_job):
        geometry, _d1, _d2 = problem
        tree = sharded_job.memo_executor.memo_state()
        fresh = MLRSolver(geometry, config(n_workers=2, n_shards=2,
                                           memo_snapshot=tree), admm=ADMM)
        router = fresh.memo_executor.router
        src = sharded_job.memo_executor.router
        assert router.entries() == src.entries()
        assert router.per_shard_entries() == src.per_shard_entries()
        for a, b in zip(router.shards, src.shards):
            assert a.query_messages == b.query_messages
            assert a.insert_messages == b.insert_messages

    def test_cross_layout_and_reshard(self, problem, sharded_job):
        """Partitions are keyed by (op, location), so a sharded snapshot
        loads into a single-layout executor and onto any shard count."""
        geometry, _d1, d2 = problem
        tree = sharded_job.memo_executor.memo_state()
        entries = sharded_job.memo_executor.db_entries_total()

        single = MLRSolver(geometry, config(memo_snapshot=tree), admm=ADMM)
        assert single.memo_executor.db_entries_total() == entries

        resharded = MLRSolver(geometry, config(n_workers=1, n_shards=3,
                                               memo_snapshot=tree), admm=ADMM)
        assert resharded.memo_executor.db_entries_total() == entries
        # counters are shard observations: not carried across topologies
        assert all(s.query_messages == 0
                   for s in resharded.memo_executor.router.shards)
        # and the resharded warm start actually hits
        baseline = resharded.executor.db_stats_total()
        resharded.reconstruct(d2)
        assert resharded.executor.db_stats_total().delta(baseline).hits > 0

    def test_single_snapshot_into_sharded(self, problem, first_job):
        geometry, _d1, _d2 = problem
        tree = first_job.memo_executor.memo_state()
        sharded = MLRSolver(geometry, config(n_workers=1, n_shards=2,
                                             memo_snapshot=tree), admm=ADMM)
        assert (sharded.memo_executor.db_entries_total()
                == first_job.memo_executor.db_entries_total())

    def test_loaded_partitions_answer_bit_identically(self, sharded_job, tmp_path):
        save_memo_snapshot(tmp_path / "m", sharded_job.memo_executor)
        tree = load_memo_snapshot(tmp_path / "m")
        fresh = MLRSolver(sharded_job.geometry, config(n_workers=2, n_shards=2),
                          admm=ADMM)
        install_memo_state(fresh.memo_executor, tree)
        rng = np.random.default_rng(5)
        checked = 0
        for shard, restored_shard in zip(sharded_job.memo_executor.router.shards,
                                         fresh.memo_executor.router.shards):
            for key_id, live in shard._dbs.items():
                restored = restored_shard._dbs[key_id]
                probes = [np.array(k, copy=True) for k in live._keys.values()][:4]
                probes += [p + rng.normal(0, 1e-3, p.shape).astype(np.float32)
                           for p in probes[:2]]
                if not probes:
                    continue
                for a, b in zip(live.query_batch(probes),
                                restored.query_batch(probes)):
                    assert a.similarity == b.similarity
                    assert a.matched_id == b.matched_id
                    assert (a.value is None) == (b.value is None)
                    if a.value is not None:
                        assert np.array_equal(a.value, b.value)
                    checked += 1
        assert checked > 0
