"""Crash-safe snapshot I/O: corruption detection, quarantine, cold start.

The robustness contract: every way a snapshot can rot on disk — truncated
arrays, a bit-flipped manifest, a vanished partition file — surfaces as
:class:`SnapshotError` on read; warm-start consumers (the solver, the
scheduler, the server daemon) quarantine the evidence to ``<path>.corrupt``
and cold-start instead of dying or silently serving a damaged tier.
"""

from __future__ import annotations

import os

import pytest

from repro.core import MemoConfig, MLRConfig, MLRSolver
from repro.faults import FaultPlan, FaultRule
from repro.faults import runtime as faults
from repro.lamino import LaminoGeometry, brain_like, simulate_data
from repro.net import MemoServerDaemon
from repro.obs import ObsConfig
from repro.obs import runtime as obs
from repro.service import (
    JobSpec,
    JobState,
    ReconstructionScheduler,
    ServiceConfig,
    SnapshotError,
    load_memo_snapshot,
    quarantine_snapshot,
    read_snapshot,
    save_memo_snapshot,
    write_snapshot,
)
from repro.solvers import ADMMConfig

WAIT = 120.0
MEMO = dict(tau=0.9, warmup_iterations=1, index_train_min=8,
            index_clusters=4, index_nprobe=2)
ADMM = ADMMConfig(n_outer=3, n_inner=2, step_max_rel=4.0)


@pytest.fixture(autouse=True)
def pristine(request):
    faults.uninstall()
    obs.reset()
    yield
    faults.uninstall()
    obs.reset()


@pytest.fixture(scope="module")
def problem():
    n = 12
    geometry = LaminoGeometry((n, n, n), n_angles=8, det_shape=(n, n), tilt_deg=61.0)
    data = simulate_data(brain_like(geometry.vol_shape, seed=7), geometry,
                         noise_level=0.02, seed=1)
    return geometry, data


def config(**over) -> MLRConfig:
    return MLRConfig(chunk_size=4, memo=MemoConfig(**MEMO), **over)


@pytest.fixture(scope="module")
def snapshot_tree(problem):
    """A real memo-state tree from a completed small reconstruction."""
    geometry, data = problem
    solver = MLRSolver(geometry, config(), admm=ADMM)
    solver.reconstruct(data)
    return solver.memo_executor.memo_state()


@pytest.fixture()
def snapshot_dir(snapshot_tree, tmp_path):
    path = tmp_path / "snap"
    write_snapshot(path, snapshot_tree, kind="memo-state")
    return path


def counter_total(name: str) -> float:
    return sum(e["value"] for e in obs.snapshot() if e["name"] == name)


class TestReadDetectsCorruption:
    def test_truncated_arrays(self, snapshot_dir):
        arrays = snapshot_dir / "arrays.npz"
        raw = arrays.read_bytes()
        arrays.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotError, match="arrays"):
            read_snapshot(snapshot_dir, expect_kind="memo-state")

    def test_bitflipped_manifest(self, snapshot_dir):
        manifest = snapshot_dir / "manifest.json"
        raw = bytearray(manifest.read_bytes())
        raw[len(raw) // 2] ^= 0x40
        manifest.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError):
            read_snapshot(snapshot_dir, expect_kind="memo-state")

    def test_checksum_drift_in_arrays(self, snapshot_dir):
        """A payload bit-flip that keeps the zip container readable is
        still caught by the per-array SHA-256 checksums."""
        manifest = snapshot_dir / "manifest.json"
        text = manifest.read_text()
        # corrupt one stored checksum: content vs manifest now disagree
        import json

        doc = json.loads(text)
        name = next(iter(doc["arrays"]))
        doc["arrays"][name]["sha256"] = "0" * 64
        manifest.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(snapshot_dir, expect_kind="memo-state")

    def test_deleted_partition_file(self, snapshot_dir):
        os.unlink(snapshot_dir / "arrays.npz")
        with pytest.raises(SnapshotError, match="arrays"):
            read_snapshot(snapshot_dir, expect_kind="memo-state")

    def test_missing_manifest_reads_as_no_snapshot(self, snapshot_dir):
        os.unlink(snapshot_dir / "manifest.json")
        with pytest.raises(SnapshotError, match="missing"):
            read_snapshot(snapshot_dir)

    def test_fault_injected_write_corruption_is_caught(
        self, snapshot_tree, tmp_path
    ):
        """A seeded bitflip on the snapshot write path (the chaos suite's
        disk-fault model) is detected on the very next read."""
        path = tmp_path / "faulted"
        plan = FaultPlan(3, (FaultRule("snapshot:write:*", "bitflip"),))
        with faults.injected_faults(plan):
            write_snapshot(path, snapshot_tree, kind="memo-state")
        assert plan.trace, "the write-path fault never fired"
        with pytest.raises(SnapshotError):
            read_snapshot(path, expect_kind="memo-state")


class TestDurableWrite:
    def test_no_temp_files_left_behind(self, snapshot_dir):
        leftovers = [f for f in os.listdir(snapshot_dir) if ".tmp." in f]
        assert leftovers == []

    def test_rewrite_over_existing_snapshot(self, snapshot_tree, snapshot_dir):
        write_snapshot(snapshot_dir, snapshot_tree, kind="memo-state")
        tree = read_snapshot(snapshot_dir, expect_kind="memo-state")
        assert tree["partitions"]


class TestQuarantine:
    def test_quarantine_moves_aside_and_numbers(self, snapshot_dir):
        dest = quarantine_snapshot(snapshot_dir)
        assert dest == f"{snapshot_dir}.corrupt" and os.path.isdir(dest)
        assert not os.path.exists(snapshot_dir)
        # a second corruption of the same path gets a numbered slot
        os.makedirs(snapshot_dir)
        assert quarantine_snapshot(snapshot_dir) == f"{snapshot_dir}.corrupt.2"

    def test_quarantine_of_nothing_is_none(self, tmp_path):
        assert quarantine_snapshot(tmp_path / "ghost") is None


class TestSolverColdStart:
    def test_corrupt_warm_start_quarantines_and_runs_cold(
        self, problem, snapshot_dir
    ):
        obs.configure(ObsConfig())
        geometry, data = problem
        (snapshot_dir / "arrays.npz").write_bytes(b"not a zip at all")
        solver = MLRSolver(
            geometry, config(memo_snapshot=str(snapshot_dir)), admm=ADMM
        )
        assert solver.snapshot_quarantined
        assert solver.memo_executor.db_entries_total() == 0  # cold
        assert not os.path.exists(snapshot_dir)  # moved aside
        assert os.path.isdir(f"{snapshot_dir}.corrupt")
        assert counter_total("snapshot_quarantined_total") == 1
        result = solver.reconstruct(data)  # and the job still completes
        assert result.u.shape == geometry.vol_shape

    def test_intact_warm_start_is_untouched(self, problem, snapshot_dir):
        geometry, _data = problem
        solver = MLRSolver(
            geometry, config(memo_snapshot=str(snapshot_dir)), admm=ADMM
        )
        assert not solver.snapshot_quarantined
        assert solver.memo_executor.db_entries_total() > 0
        assert os.path.isdir(snapshot_dir)

    def test_explicit_load_still_raises(self, snapshot_dir):
        """Only the warm-start path degrades; a direct load call is an
        explicit request and keeps failing loudly."""
        (snapshot_dir / "arrays.npz").write_bytes(b"junk")
        with pytest.raises(SnapshotError):
            load_memo_snapshot(snapshot_dir)


class TestSchedulerEvents:
    def job(self, problem, name: str, **config_over) -> JobSpec:
        geometry, data = problem
        return JobSpec(
            name=name, geometry=geometry, projections=data,
            config=config(**config_over), admm=ADMM,
        )

    def test_job_records_snapshot_quarantined_event(self, problem, snapshot_dir):
        (snapshot_dir / "arrays.npz").write_bytes(b"junk")
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            handle = sched.submit(
                self.job(problem, "corrupt-snap", memo_snapshot=str(snapshot_dir))
            )
            assert handle.wait(WAIT)
        assert handle.state is JobState.DONE
        kinds = [ev.kind for ev in handle.events]
        assert "snapshot_quarantined" in kinds
        assert str(snapshot_dir) in next(
            ev.detail for ev in handle.events if ev.kind == "snapshot_quarantined"
        )

    def test_incompatible_shared_tier_seeds_cold_with_event(self, problem):
        """A shared tier the job's memo config rejects (tau skew) means a
        ``seed_failed`` event and a cold — but DONE — job."""
        obs.configure(ObsConfig())
        geometry, data = problem
        hot_tau = MemoConfig(**{**MEMO, "tau": 0.95})
        donor = MLRSolver(
            geometry, MLRConfig(chunk_size=4, memo=hot_tau), admm=ADMM
        )
        donor.reconstruct(data)
        with ReconstructionScheduler(
            ServiceConfig(n_workers=1, share_memo=True)
        ) as sched:
            sched.memo_service.absorb(donor.memo_executor)
            handle = sched.submit(self.job(problem, "tau-skew"))
            assert handle.wait(WAIT)
        assert handle.state is JobState.DONE
        kinds = [ev.kind for ev in handle.events]
        assert "seed_failed" in kinds and "warm_start" not in kinds
        assert handle.db_entries_start == 0
        assert counter_total("job_seed_failed_total") == 1


class TestServerBoot:
    def test_daemon_quarantines_corrupt_boot_snapshot(
        self, snapshot_dir, snapshot_tree
    ):
        (snapshot_dir / "arrays.npz").write_bytes(b"junk")
        with MemoServerDaemon(
            memo=MemoConfig(**MEMO), snapshot_path=str(snapshot_dir)
        ) as srv:
            assert srv.stats.snapshots_quarantined == 1
            assert srv.router.entries() == 0  # cold boot
        assert os.path.isdir(f"{snapshot_dir}.corrupt")
