"""Smoke-scale runs of every table/figure regenerator."""

from __future__ import annotations

import numpy as np

from repro.harness import experiments as E
from repro.harness.datasets import DATASETS, DatasetSpec, build

TINY = DatasetSpec(name="tiny", paper_n=1024, sim_n=16, sim_chunk=4)


class TestDatasets:
    def test_registry(self):
        assert set(DATASETS) == {"small", "medium", "large"}
        assert DATASETS["small"].paper_n == 1024

    def test_build_deterministic(self):
        g1, t1, d1 = build(TINY, seed=5)
        g2, t2, d2 = build(TINY, seed=5)
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_array_equal(d1, d2)

    def test_dims_paper_scale(self):
        assert TINY.dims.n == 1024
        assert TINY.geometry.vol_shape == (16, 16, 16)


class TestExperimentsSmoke:
    def test_fig02(self):
        r = E.fig02_memory_breakdown(TINY)
        assert r.lsp_fraction > 0.5
        assert r.total_bytes > 0
        assert "psi" in r.report()

    def test_fig04(self):
        r = E.fig04_chunk_similarity(TINY, n_outer=8, quick=True)
        assert set(r.counts) == {"top", "middle", "bottom"}
        assert all(v[0] == 0 for v in r.counts.values())

    def test_fig08(self):
        r = E.fig08_overall(n_outer=10, sim_outer=4, quick=True)
        assert len(r.rows) == 3
        assert all(row[3] < 1.5 for row in r.rows)
        assert "normalized" in r.report()

    def test_fig09(self):
        r = E.fig09_cancellation()
        assert len(r.rows) == 12  # 2 datasets x 2 workloads x 3 variants

    def test_fig10(self):
        r = E.fig10_memo_breakdown(TINY, sim_outer=4)
        assert set(r.data) == {"Fu1D", "Fu2D", "Fu2D*", "Fu1D*"}
        for cases in r.data.values():
            assert set(cases) == {"orig", "fail", "suc", "cached"}

    def test_fig11(self):
        r = E.fig11_coalesce(TINY)
        assert 0.0 < r.improvement < 1.0

    def test_fig12(self):
        r = E.fig12_cache_hitrate(TINY, n_outer=6)
        assert r.global_comparisons > r.private_comparisons

    def test_fig13(self):
        r = E.fig13_offload(TINY)
        assert set(r.outcomes) == {
            "ADMM (no offload)", "ADMM greedy offload", "ADMM LRU offload", "ADMM-Offload",
        }

    def test_fig14_15_16(self):
        r = E.fig14_scaling(TINY, gpu_counts=(1, 4), sim_outer=3, quick=True)
        assert r.gpu_counts == [1, 4]
        assert r.overall[1] < r.overall[0]
        assert len(r.nic_utilization) == 2
        assert set(r.latencies) == {1, 4}

    def test_tab01(self):
        r = E.tab01_accuracy(TINY, taus=(0.9, 0.96), n_outer=6, quick=False)
        assert len(r.taus) == 2
        assert all(np.isfinite(a) for a in r.accuracies)

    def test_fig17(self):
        r = E.fig17_convergence(TINY, n_outer=5, quick=True)
        assert len(r.loss_without) == 5
        assert len(r.loss_with) == 5
        assert r.loss_without[-1] < r.loss_without[0]

    def test_fig18(self):
        r = E.fig18_pipeline_overlap(
            TINY, queue_depths=(1, 2), worker_counts=(1, 2), sim_outer=3, quick=True
        )
        assert r.bitwise_identical
        assert r.streaming_identical
        assert r.io_time > 0
        for perf in r.perfs.values():
            assert perf.pipelined_time < perf.serial_time
            assert perf.speedup <= perf.speedup_bound * (1 + 1e-9)
        assert "Figure 18" in r.report()


class TestReportHelpers:
    def test_table_alignment(self):
        from repro.harness.report import table

        out = table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_cdf_rows(self):
        from repro.harness.report import cdf_rows

        rows = cdf_rows(list(range(100)))
        assert rows[0][0] == 0.25
        assert rows[-1][1] >= rows[0][1]

    def test_cdf_rows_empty(self):
        from repro.harness.report import cdf_rows

        rows = cdf_rows([])
        assert all(np.isnan(v) for _, v in rows)
