"""Perf-trend gate over the committed benchmark history.

``run_all.py`` appends one compact record per run to
``benchmarks/results/history.jsonl``; ``python -m benchmarks.perf.trend``
fails CI when the latest comparable entry regressed ``best_s`` past the
threshold.  These tests pin the record schema, the comparison rules
(same ``--quick`` flag only, machine-fingerprint guard), and the gate's
exit codes.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if _REPO not in sys.path:  # `benchmarks` lives at the repo root, not in src/
    sys.path.insert(0, _REPO)

from benchmarks.perf import trend  # noqa: E402

MACHINE = {"platform": "linux-x", "python": "3.11", "numpy": "2.0",
           "scipy": "1.14", "cpus": 8}


def payload(best, quick=True, machine=None, t=1000):
    return {
        "schema": "mlr-bench-perf/2",
        "generated_unix": t,
        "quick": quick,
        "machine": dict(machine if machine is not None else MACHINE),
        "benchmarks": {
            name: {"optimized": {"best_s": s}, "baseline": {"best_s": s * 3},
                   "speedup": 3.0}
            for name, s in best.items()
        },
        "acceptance": {"e2e_speedup": 3.0},
    }


def write_history(path, payloads):
    for p in payloads:
        trend.append_history(p, path=str(path))


class TestHistoryRecords:
    def test_entry_compresses_payload(self):
        rec = trend.history_entry(payload({"a": 0.5, "b": 0.25}))
        assert rec["schema"] == trend.HISTORY_SCHEMA
        assert rec["best_s"] == {"a": 0.5, "b": 0.25}
        assert rec["quick"] is True
        assert rec["t"] == 1000
        assert rec["acceptance"] == {"e2e_speedup": 3.0}

    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history(path, [payload({"a": 0.5}), payload({"a": 0.4}, t=2000)])
        entries = trend.load_history(str(path))
        assert [e["t"] for e in entries] == [1000, 2000]

    def test_load_skips_foreign_schemas(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history(path, [payload({"a": 0.5})])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"schema": "other/9", "best_s": {}}) + "\n\n")
        assert len(trend.load_history(str(path))) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert trend.load_history(str(tmp_path / "nope.jsonl")) == []


class TestCompare:
    def test_regression_past_threshold_is_reported(self):
        prev = trend.history_entry(payload({"a": 1.0, "b": 1.0}))
        cur = trend.history_entry(payload({"a": 1.3, "b": 1.1}))
        regs = trend.compare(prev, cur, threshold=0.25)
        assert [r["benchmark"] for r in regs] == ["a"]
        assert regs[0]["ratio"] == pytest.approx(1.3)

    def test_improvement_and_within_threshold_pass(self):
        prev = trend.history_entry(payload({"a": 1.0}))
        cur = trend.history_entry(payload({"a": 0.5}))
        assert trend.compare(prev, cur) == []

    def test_added_or_retired_benchmarks_are_not_regressions(self):
        prev = trend.history_entry(payload({"a": 1.0, "gone": 1.0}))
        cur = trend.history_entry(payload({"a": 1.0, "new": 99.0}))
        assert trend.compare(prev, cur) == []

    def test_machine_fingerprint(self):
        a = trend.history_entry(payload({"x": 1.0}))
        b = trend.history_entry(payload({"x": 1.0}))
        assert trend.same_machine(a, b)
        other = dict(MACHINE, cpus=128)
        c = trend.history_entry(payload({"x": 1.0}, machine=other))
        assert not trend.same_machine(a, c)


class TestGateCli:
    def test_too_little_history_passes(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        write_history(path, [payload({"a": 1.0})])
        assert trend.main(["--history", str(path)]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_regression_fails_the_gate(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        write_history(path, [payload({"a": 1.0}), payload({"a": 2.0}, t=2000)])
        assert trend.main(["--history", str(path)]) == 1
        assert "REGRESSION a" in capsys.readouterr().out

    def test_stable_history_passes(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history(path, [payload({"a": 1.0}), payload({"a": 1.1}, t=2000)])
        assert trend.main(["--history", str(path)]) == 0

    def test_compares_latest_same_quick_entry(self, tmp_path):
        # the full run between the two quick runs must not be the baseline
        path = tmp_path / "history.jsonl"
        write_history(path, [
            payload({"a": 1.0}, quick=True),
            payload({"a": 0.1}, quick=False, t=2000),
            payload({"a": 1.1}, quick=True, t=3000),
        ])
        assert trend.main(["--history", str(path)]) == 0

    def test_no_comparable_entry_passes(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        write_history(path, [payload({"a": 1.0}, quick=False),
                             payload({"a": 9.0}, quick=True, t=2000)])
        assert trend.main(["--history", str(path)]) == 0
        assert "matching --quick" in capsys.readouterr().out

    def test_machine_mismatch_warns_and_passes(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        write_history(path, [
            payload({"a": 1.0}),
            payload({"a": 9.0}, machine=dict(MACHINE, cpus=128), t=2000),
        ])
        assert trend.main(["--history", str(path)]) == 0
        assert "different machines" in capsys.readouterr().out
        assert trend.main(
            ["--history", str(path), "--strict-machine"]
        ) == 1

    def test_threshold_is_tunable(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history(path, [payload({"a": 1.0}), payload({"a": 1.4}, t=2000)])
        assert trend.main(["--history", str(path)]) == 1
        assert trend.main(["--history", str(path), "--threshold", "0.5"]) == 0

    def test_committed_history_gate_passes(self):
        """The repo's own committed history must never fail the gate."""
        assert trend.main([]) == 0
