"""FaultPlan determinism and rule semantics (no sockets involved)."""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultPlan, FaultRule, active_plan, install, installed, uninstall
from repro.faults import runtime as faults


def drive(plan: FaultPlan, ops: list[str]):
    """Run a fixed operation sequence through a plan; returns the decisions."""
    return [
        (site, ev.kind if ev else None)
        for site in ops
        for ev in [plan.decide(site)]
    ]


OPS = (
    ["client:a:send"] * 5
    + ["client:a:recv"] * 5
    + ["client:b:send"] * 5
    + ["server:s0:shard0"] * 3
)


class TestDeterminism:
    def test_same_seed_same_decisions_and_trace(self):
        rules = (
            FaultRule("client:*:send", "drop", prob=0.5),
            FaultRule("server:*", "stall", prob=0.5, delay_s=0.01),
        )
        p1, p2 = FaultPlan(42, rules), FaultPlan(42, rules)
        assert drive(p1, list(OPS)) == drive(p2, list(OPS))
        assert p1.trace_signature() == p2.trace_signature()
        assert [e.as_dict() for e in p1.trace] == [e.as_dict() for e in p2.trace]

    def test_different_seeds_differ(self):
        rules = (FaultRule("client:*", "drop", prob=0.5),)
        d1 = drive(FaultPlan(0, rules), list(OPS))
        d2 = drive(FaultPlan(1, rules), list(OPS))
        assert d1 != d2  # astronomically unlikely to collide at prob=0.5 over 15 ops

    def test_site_streams_independent(self):
        """Extra traffic at one site never changes another site's decisions."""
        rules = (FaultRule("client:*", "drop", prob=0.5),)
        base = FaultPlan(7, rules)
        noisy = FaultPlan(7, rules)
        for _ in range(50):
            noisy.decide("client:noise:send")
        a = [base.decide("client:a:send") is not None for _ in range(20)]
        b = [noisy.decide("client:a:send") is not None for _ in range(20)]
        assert a == b


class TestRuleSemantics:
    def test_after_skips_leading_ops(self):
        plan = FaultPlan(1, (FaultRule("s", "drop", after=3),))
        hits = [plan.decide("s") is not None for _ in range(6)]
        assert hits == [False, False, False, True, True, True]

    def test_max_times_caps_firing(self):
        plan = FaultPlan(1, (FaultRule("s", "drop", max_times=2),))
        hits = [plan.decide("s") is not None for _ in range(5)]
        assert hits == [True, True, False, False, False]

    def test_glob_matching(self):
        plan = FaultPlan(1, (FaultRule("client:*:send", "drop"),))
        assert plan.decide("client:x:send").kind == "drop"
        assert plan.decide("client:x:recv") is None
        assert plan.decide("server:x:send") is None

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule("s", "explode")
        with pytest.raises(ValueError, match="prob"):
            FaultRule("s", "drop", prob=1.5)
        with pytest.raises(ValueError, match="delay_s"):
            FaultRule("s", "drop", delay_s=-1)
        with pytest.raises(ValueError, match="after"):
            FaultRule("s", "drop", after=-1)
        with pytest.raises(ValueError, match="max_times"):
            FaultRule("s", "drop", max_times=0)
        with pytest.raises(TypeError, match="FaultRule"):
            FaultPlan(0, ("not a rule",))


class TestCorruptBytes:
    def test_deterministic_and_detectably_corrupt(self):
        raw = bytes(range(256)) * 4
        out1 = FaultPlan(9, (FaultRule("snap:*", "corrupt"),)).corrupt_bytes("snap:x", raw)
        out2 = FaultPlan(9, (FaultRule("snap:*", "corrupt"),)).corrupt_bytes("snap:x", raw)
        assert out1 == out2
        assert out1 != raw

    def test_bitflip_preserves_length(self):
        raw = b"\x00" * 64
        out = FaultPlan(3, (FaultRule("snap:*", "bitflip"),)).corrupt_bytes("snap:x", raw)
        assert len(out) == len(raw)
        assert sum(a != b for a, b in zip(out, raw)) == 1

    def test_no_rule_returns_raw(self):
        raw = b"hello"
        assert FaultPlan(3).corrupt_bytes("snap:x", raw) is raw


class TestTraceExport:
    def test_jsonl_round_trips(self, tmp_path):
        plan = FaultPlan(5, (FaultRule("s", "drop"),))
        plan.decide("s")
        plan.decide("s")
        path = tmp_path / "trace.jsonl"
        plan.dump_trace(path)
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert [ln["kind"] for ln in lines] == ["drop", "drop"]
        assert [ln["op_index"] for ln in lines] == [0, 1]


class TestRuntimeInstall:
    def test_install_uninstall_and_context(self):
        assert not installed()
        plan = FaultPlan(0)
        with faults.injected_faults(plan) as active:
            assert installed() and active is plan and active_plan() is plan
        assert not installed() and active_plan() is None

    def test_install_rejects_non_plan(self):
        with pytest.raises(TypeError):
            install("nope")

    def test_hooks_are_noops_without_plan(self):
        uninstall()
        faults.on_connect("client:x")
        sentinel = object()
        assert faults.wrap_socket(sentinel, "client:x") is sentinel
        assert faults.on_snapshot_read("x", b"raw") == b"raw"
        assert faults.on_snapshot_write("x", b"raw") == b"raw"
        faults.maybe_stall("server:x")

    def test_on_connect_refuses(self):
        plan = FaultPlan(0, (FaultRule("client:x:connect", "refuse"),))
        with faults.injected_faults(plan):
            with pytest.raises(ConnectionRefusedError):
                faults.on_connect("client:x")
