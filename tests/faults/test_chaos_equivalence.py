"""Chaos acceptance: recoverable faults never change the reconstruction.

The PR's headline contracts:

- a seeded :class:`FaultPlan` of *recoverable* faults (dropped/truncated
  frames, connect delays, slow shards) produces a reconstruction — values
  AND per-op hit/miss decisions — bit-identical to the no-fault run: the
  retry/replay/failover machinery recovers, it never silently degrades,
- the same plan seed replays the same fault trace,
- killing one of two memo replicas mid-run completes warm through
  failover (``net_client_failover_total`` > 0, zero degraded queries).

When ``REPRO_FAULT_TRACE_DIR`` is set (the CI chaos job does), each run's
fault trace is dumped there as JSONL for artifact upload.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import MemoConfig, MLRConfig, MLRSolver
from repro.faults import FaultPlan, FaultRule
from repro.faults import runtime as faults
from repro.faults.chaos import ReplicaSet
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.net import MemoServerDaemon
from repro.obs import ObsConfig
from repro.obs import runtime as obs
from repro.solvers import ADMMConfig

ADMM = ADMMConfig(n_outer=5, n_inner=2, step_max_rel=4.0)


def memo_cfg(**over) -> MemoConfig:
    base = dict(
        tau=0.92, warmup_iterations=1, index_train_min=4, index_clusters=2,
        index_nprobe=2,
    )
    base.update(over)
    return MemoConfig(**base)


# recoverable-fault plan: connection drops and truncations (client must
# reconnect + replay), connect/shard latency (must only slow things down).
# `after` lets each site's handshake through; max_times bounds wall-clock.
def chaos_rules():
    return (
        FaultRule("client:*:send", "drop", prob=0.05, after=4, max_times=2),
        FaultRule("client:*:recv", "drop", prob=0.03, after=4, max_times=2),
        FaultRule("client:*:send", "truncate", prob=0.03, after=6, max_times=1),
        FaultRule("client:*:connect", "delay", prob=0.3, delay_s=0.002),
        FaultRule("server:*:shard*", "stall", prob=0.05, delay_s=0.002),
    )


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faults.uninstall()
    obs.reset()
    yield
    faults.uninstall()
    obs.reset()


@pytest.fixture(scope="module")
def problem():
    n = 16
    g = LaminoGeometry((n, n, n), n_angles=12, det_shape=(n, n), tilt_deg=61.0)
    ops = LaminoOperators(g)
    truth = brain_like(g.vol_shape, seed=7)
    d = simulate_data(truth, g, noise_level=0.03, seed=1)
    return g, ops, d


def run_tcp(problem, address, on_iteration=None, **memo_over):
    g, ops, d = problem
    cfg = MLRConfig(
        chunk_size=4,
        memo=memo_cfg(transport="tcp", server_address=address, **memo_over),
    )
    solver = MLRSolver(g, cfg, admm=ADMM, ops=ops)
    try:
        result = solver.reconstruct(d, callback=on_iteration)
        net = solver.memo_executor.router.net_stats
        return result, net
    finally:
        solver.close()


def event_view(result):
    return [
        (e.outer, e.inner, e.op, e.chunk, e.case, e.similarity, e.worker, e.shard)
        for e in result.events
    ]


def maybe_dump_trace(plan: FaultPlan, name: str) -> None:
    trace_dir = os.environ.get("REPRO_FAULT_TRACE_DIR")
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        plan.dump_trace(os.path.join(trace_dir, f"{name}-seed{plan.seed}.jsonl"))


class TestChaosEquivalence:
    def test_recoverable_faults_bit_identical_to_no_fault(self, problem):
        with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as srv:
            ref, ref_net = run_tcp(problem, srv.address)
        plan = FaultPlan(1234, chaos_rules())
        with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as srv:
            with faults.injected_faults(plan):
                res, net = run_tcp(problem, srv.address)
        maybe_dump_trace(plan, "equivalence")
        assert plan.trace, "the plan never fired — the test exercised nothing"
        # faults were recovered, not degraded past: zero cold-compute
        # fallbacks, and at least one retry/replay actually happened
        assert net.degraded_queries == 0
        assert net.retries + net.replayed_insert_batches > 0
        np.testing.assert_array_equal(ref.u, res.u)
        assert event_view(ref) == event_view(res)
        assert ref.case_counts == res.case_counts
        assert ref.op_counts == res.op_counts

    def test_same_seed_replays_same_fault_trace(self, problem):
        signatures = []
        for _ in range(2):
            plan = FaultPlan(77, chaos_rules())
            with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as srv:
                with faults.injected_faults(plan):
                    run_tcp(problem, srv.address)
            maybe_dump_trace(plan, "replay")
            signatures.append(plan.trace_signature())
        assert signatures[0], "plans never fired"
        assert signatures[0] == signatures[1]

    def test_different_seed_different_trace(self, problem):
        signatures = []
        for seed in (5, 6):
            plan = FaultPlan(seed, chaos_rules())
            with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as srv:
                with faults.injected_faults(plan):
                    run_tcp(problem, srv.address)
            signatures.append(plan.trace_signature())
        assert signatures[0] != signatures[1]


class TestReplicaKillMidRun:
    def test_kill_one_of_two_completes_warm_with_failover(self, problem):
        obs.configure(ObsConfig())
        with ReplicaSet(n=2, memo=memo_cfg(), n_shards=2) as ref_rs:
            ref, _ = run_tcp(problem, ref_rs.address_str)
        obs.reset()
        obs.configure(ObsConfig())
        with ReplicaSet(n=2, memo=memo_cfg(), n_shards=2) as rs:
            killed = []

            def kill_at_2(it, _u, _info):
                if it == 2 and not killed:
                    killed.append(rs.kill(0))

            res, net = run_tcp(problem, rs.address_str, on_iteration=kill_at_2)
            assert killed == [True]
            assert not rs.alive(0) and rs.alive(1)
        # completed warm: the surviving replica answered every query the
        # dead one would have — bit-identical, zero degraded fallbacks
        np.testing.assert_array_equal(ref.u, res.u)
        assert event_view(ref) == event_view(res)
        assert net.degraded_queries == 0
        failovers = sum(
            e["value"] for e in obs.snapshot()
            if e["name"] == "net_client_failover_total"
        )
        assert failovers > 0
