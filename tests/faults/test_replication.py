"""Replicated memo tier: fan-out, per-shard failover, circuits, resync.

Client-level coverage of :class:`ReplicatedMemoClient` against a real
two-daemon :class:`ReplicaSet` (solver-level chaos equivalence lives in
``test_chaos_equivalence.py``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.config import MemoConfig
from repro.core.memo_shard import ShardInsert, ShardQuery
from repro.faults.chaos import DaemonSchedule, ReplicaSet
from repro.net import TransportUnavailable
from repro.net.policy import RetryPolicy
from repro.net.replicated import ReplicatedMemoClient
from repro.obs import ObsConfig
from repro.obs import runtime as obs

MEMO = MemoConfig(index_train_min=4, index_clusters=2, index_nprobe=2)
# short deadlines/backoff so dead-replica failover costs milliseconds
FAST = RetryPolicy(
    max_attempts=2, deadline_s=5.0, backoff_initial_s=0.01, backoff_max_s=0.05,
    failure_threshold=2, reset_timeout_s=0.2,
)


@pytest.fixture(autouse=True)
def pristine_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def replicas():
    with ReplicaSet(n=2, memo=MEMO, n_shards=2) as rs:
        yield rs


def make_client(rs, **over):
    kwargs = dict(
        expect_tau=MEMO.tau,
        expect_value_mode=MEMO.db_value_mode,
        n_shards_hint=2,
        retry_policy=FAST,
        client_name="test-replicated",
    )
    kwargs.update(over)
    return ReplicatedMemoClient(rs.address_str, **kwargs)


def mk_items(rng, n, op="Fu1D"):
    out = []
    for i in range(n):
        key = rng.normal(size=12).astype(np.float32)
        val = (rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))).astype(
            np.complex64
        )
        out.append(ShardInsert(op, i, key, val, meta=(1.0, 0j)))
    return out


class TestFanOut:
    def test_inserts_reach_every_replica(self, replicas, rng):
        with make_client(replicas) as client:
            inserts = mk_items(rng, 6)
            client.insert_batch(inserts)
            client.flush()
            assert replicas.daemon(0).router.entries() == 6
            assert replicas.daemon(1).router.entries() == 6
            # reads answer identically from either replica
            out = client.query_batch([ShardQuery("Fu1D", 2, inserts[2].key)])
            assert out[0].hit and out[0].similarity > 0.99

    def test_push_state_seeds_all_replicas(self, replicas, rng):
        with make_client(replicas) as client:
            client.insert_batch(mk_items(rng, 4))
            client.flush()
            tree = client.state_dict()
        with ReplicaSet(n=2, memo=MEMO, n_shards=2) as fresh:
            with make_client(fresh) as c2:
                assert c2.push_state(tree)
                assert fresh.daemon(0).router.entries() == 4
                assert fresh.daemon(1).router.entries() == 4

    def test_replication_slices_address_list(self, replicas):
        with make_client(replicas, replication=1) as client:
            assert len(client.addresses) == 1
        with pytest.raises(ValueError, match="replication"):
            make_client(replicas, replication=3)


class TestFailover:
    def test_kill_one_of_two_queries_still_warm(self, replicas, rng):
        obs.configure(ObsConfig())
        with make_client(replicas) as client:
            inserts = mk_items(rng, 6)
            client.insert_batch(inserts)
            client.flush()
            replicas.kill(0)
            queries = [ShardQuery(i.op, i.location, i.key) for i in inserts]
            outcomes = client.query_batch(queries)
            # every query is a warm hit served by the surviving replica
            assert all(o.hit and o.similarity > 0.99 for o in outcomes)
            failovers = [
                e for e in obs.snapshot()
                if e["name"] == "net_client_failover_total"
            ]
            assert failovers and sum(e["value"] for e in failovers) > 0

    def test_repeated_failures_open_the_circuit(self, replicas, rng):
        obs.configure(ObsConfig())
        with make_client(replicas) as client:
            client.insert_batch(mk_items(rng, 4))
            client.flush()
            replicas.kill(0)
            q = [ShardQuery("Fu1D", 0, mk_items(rng, 1)[0].key)]
            for _ in range(4):
                client.query_batch(q)
            health = client.health()
            dead = health[f"{replicas.addresses[0][0]}:{replicas.addresses[0][1]}"]
            assert dead["circuit"] == "open"
            gauges = {
                (e["name"], e["labels"].get("replica")): e["value"]
                for e in obs.snapshot() if e["name"] == "circuit_state"
            }
            addr0 = "%s:%d" % replicas.addresses[0]
            addr1 = "%s:%d" % replicas.addresses[1]
            assert gauges[("circuit_state", addr0)] == 2  # open
            assert gauges[("circuit_state", addr1)] == 0  # closed

    def test_all_replicas_down_fail_open_and_closed(self, replicas, rng):
        with make_client(replicas) as client:
            client.insert_batch(mk_items(rng, 2))
            replicas.kill(0)
            replicas.kill(1)
            out = client.query_batch([ShardQuery("Fu1D", 0, mk_items(rng, 1)[0].key)])
            assert len(out) == 1 and not out[0].hit  # degraded all-miss
            client.insert_batch(mk_items(rng, 2))  # dropped, not raised
        with pytest.raises((TransportUnavailable, OSError)):
            with make_client(replicas, fail_open=False) as strict:
                strict.query_batch([ShardQuery("Fu1D", 0, mk_items(rng, 1)[0].key)])

    def test_tau_mismatch_fails_fast_even_replicated(self, replicas):
        with pytest.raises(ValueError, match="tau"):
            make_client(replicas, expect_tau=0.5)


class TestResync:
    def test_rejoined_replica_resyncs_from_clean_peer(self, replicas, rng):
        with make_client(replicas) as client:
            client.insert_batch(mk_items(rng, 3))
            client.flush()
            replicas.kill(1)
            # these inserts miss replica 1 -> it goes dirty
            late = mk_items(rng, 3, op="Fu2D")
            client.insert_batch(late)
            client.flush()
            addr1 = "%s:%d" % replicas.addresses[1]
            assert client.health()[addr1]["dirty"]
            replicas.restart(1)  # same port, empty tier
            assert replicas.daemon(1).router.entries() == 0
            client.reset_backoff()  # collapse circuits + connect windows
            assert client.resync() == 1
            assert not client.health()[addr1]["dirty"]
            # the reborn replica now holds the full tier, failover-ready
            assert replicas.daemon(1).router.entries() == 6

    def test_background_health_loop_resyncs(self, replicas, rng):
        with make_client(replicas, heartbeat_interval_s=0.05) as client:
            client.insert_batch(mk_items(rng, 4))
            client.flush()
            replicas.kill(1)
            client.insert_batch(mk_items(rng, 2, op="Fu2D"))
            client.flush()
            replicas.restart(1)
            deadline = time.monotonic() + 10.0
            addr1 = "%s:%d" % replicas.addresses[1]
            while time.monotonic() < deadline:
                if (
                    not client.health()[addr1]["dirty"]
                    and replicas.daemon(1).router.entries() == 6
                ):
                    break
                time.sleep(0.05)
            assert not client.health()[addr1]["dirty"]
            assert replicas.daemon(1).router.entries() == 6


class TestDaemonSchedule:
    def test_validates_actions(self, replicas):
        with pytest.raises(ValueError, match="verb"):
            DaemonSchedule(replicas, [(0.0, "explode", 0)])
        with pytest.raises(ValueError, match="replica"):
            DaemonSchedule(replicas, [(0.0, "kill", 5)])

    def test_timed_kill_fires(self, replicas):
        with DaemonSchedule(replicas, [(0.01, "kill", 0)]):
            deadline = time.monotonic() + 5.0
            while replicas.alive(0) and time.monotonic() < deadline:
                time.sleep(0.01)
        assert not replicas.alive(0)
