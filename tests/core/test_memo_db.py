"""Memoization database: insert/query semantics, tau gating, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MemoDatabase
from repro.core.coalescer import KeyCoalescer


def key(rng, dim=8):
    return rng.standard_normal(dim).astype(np.float32)


class TestMemoDatabase:
    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            MemoDatabase(dim=8, tau=1.5)

    def test_query_empty_misses(self, rng):
        db = MemoDatabase(dim=8, tau=0.9)
        out = db.query(key(rng))
        assert not out.hit
        assert db.stats.queries == 1

    def test_insert_then_exact_query_hits(self, rng):
        db = MemoDatabase(dim=8, tau=0.9, train_min=2)
        k = key(rng)
        v = rng.standard_normal((3, 3)).astype(np.complex64)
        db.insert(k, v, meta=(2.0, 1j))
        out = db.query(k)
        assert out.hit
        np.testing.assert_array_equal(out.value, v)
        assert out.stored_meta == (2.0, 1j)
        assert out.similarity == pytest.approx(1.0)

    def test_tau_gates_dissimilar_keys(self, rng):
        db = MemoDatabase(dim=8, tau=0.99, train_min=2)
        db.insert(key(rng), np.zeros(2))
        out = db.query(key(rng))
        assert not out.hit
        assert out.similarity < 0.99

    def test_wrong_dim_rejected(self, rng):
        db = MemoDatabase(dim=8)
        with pytest.raises(ValueError):
            db.insert(key(rng, 5), np.zeros(2))

    def test_index_trains_after_threshold(self, rng):
        db = MemoDatabase(dim=8, tau=0.5, train_min=4, index_clusters=2)
        for _ in range(3):
            db.insert(key(rng), np.zeros(1))
        assert not db.index.is_trained
        db.insert(key(rng), np.zeros(1))
        assert db.index.is_trained
        assert len(db) == 4

    def test_cold_database_still_serves(self, rng):
        """Queries work through the linear-scan fallback before training."""
        db = MemoDatabase(dim=8, tau=0.9, train_min=100)
        k = key(rng)
        db.insert(k, np.ones(2))
        out = db.query(k)
        assert out.hit

    def test_values_roundtrip_dtype_and_shape(self, rng):
        db = MemoDatabase(dim=8, tau=0.5, train_min=1)
        v = (rng.standard_normal((2, 4, 3)) + 1j * rng.standard_normal((2, 4, 3))).astype(
            np.complex64
        )
        k = key(rng)
        db.insert(k, v)
        out = db.query(k)
        assert out.value.dtype == np.complex64
        assert out.value.shape == (2, 4, 3)

    def test_stats_accounting(self, rng):
        db = MemoDatabase(dim=8, tau=0.9, train_min=1)
        k = key(rng)
        db.insert(k, np.zeros(4, dtype=np.float32))
        db.query(k)
        db.query(key(rng))
        assert db.stats.inserts == 1
        assert db.stats.hits == 1
        assert db.stats.queries == 2
        assert db.stats.bytes_inserted > 0
        assert db.stats.bytes_fetched > 0
        assert db.stats.hit_rate == pytest.approx(0.5)


class TestKeyCoalescer:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            KeyCoalescer(key_bytes=0)
        with pytest.raises(ValueError):
            KeyCoalescer(key_bytes=100, payload_bytes=50)

    def test_flush_at_payload_threshold(self):
        c = KeyCoalescer(key_bytes=100, payload_bytes=400)
        assert c.offer("a") is None
        assert c.offer("b") is None
        assert c.offer("c") is None
        batch = c.offer("d")
        assert batch == ["a", "b", "c", "d"]
        assert c.pending == 0

    def test_manual_flush(self):
        c = KeyCoalescer(key_bytes=100, payload_bytes=400)
        c.offer("x")
        assert c.flush() == ["x"]
        assert c.flush() is None

    def test_stats(self):
        c = KeyCoalescer(key_bytes=240, payload_bytes=4096)
        for i in range(40):
            c.offer(i)
        c.flush()
        assert c.stats.keys == 40
        assert c.stats.messages >= 2
        assert c.stats.mean_batch > 1
        assert c.keys_per_message == 4096 // 240
