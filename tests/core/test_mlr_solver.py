"""End-to-end MLRSolver: pool and CNN encoder paths, result contracts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MemoConfig, MLRConfig, MLRSolver
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.solvers import ADMMConfig


@pytest.fixture(scope="module")
def problem():
    n = 16
    g = LaminoGeometry((n, n, n), n_angles=12, det_shape=(n, n), tilt_deg=61.0)
    ops = LaminoOperators(g)
    d = simulate_data(brain_like(g.vol_shape, seed=1), g, noise_level=0.03, seed=2)
    return g, ops, d


ADMM = ADMMConfig(n_outer=5, n_inner=2, step_max_rel=4.0)


def cfg(**over):
    memo = dict(tau=0.9, warmup_iterations=1, index_train_min=4, index_clusters=2)
    memo.update(over)
    return MLRConfig(chunk_size=4, memo=MemoConfig(**memo))


class TestPoolPath:
    def test_reconstruct_returns_full_result(self, problem):
        g, ops, d = problem
        res = MLRSolver(g, cfg(), admm=ADMM, ops=ops).reconstruct(d)
        assert res.u.shape == g.vol_shape
        assert res.events
        assert 0.0 <= res.memoized_fraction <= 1.0
        assert len(res.history["loss"]) == ADMM.n_outer

    def test_memoized_fraction_counts_serves(self, problem):
        g, ops, d = problem
        res = MLRSolver(g, cfg(), admm=ADMM, ops=ops).reconstruct(d)
        served = res.case_counts.get("db_hit", 0) + res.case_counts.get("cache_hit", 0)
        total = sum(v for k, v in res.case_counts.items() if k != "direct")
        assert res.memoized_fraction == pytest.approx(served / total)

    def test_warm_start(self, problem):
        g, ops, d = problem
        solver = MLRSolver(g, cfg(), admm=ADMM, ops=ops)
        first = solver.reconstruct(d)
        solver2 = MLRSolver(g, cfg(), admm=ADMM, ops=ops)
        warm = solver2.reconstruct(d, u0=first.u)
        assert warm.history["loss"][0] < first.history["loss"][0]


class TestCNNPath:
    def test_train_encoder_and_reconstruct(self, problem):
        """The paper's CNN path: harvest chunks, contrastive-train, quantize,
        reconstruct with the learned keys."""
        g, ops, d = problem
        solver = MLRSolver(g, cfg(), admm=ADMM, ops=ops)
        enc = solver.train_encoder(
            d, harvest_iterations=1, n_epochs=2, input_hw=16, embed_dim=16
        )
        assert enc.dim == 16
        res = solver.reconstruct(d)
        served = res.case_counts.get("db_hit", 0) + res.case_counts.get("cache_hit", 0)
        assert served > 0  # the learned keys actually produce hits
        assert np.isfinite(res.u).all()

    def test_trained_encoder_installed_in_executor(self, problem):
        g, ops, d = problem
        solver = MLRSolver(g, cfg(), admm=ADMM, ops=ops)
        enc = solver.train_encoder(d, harvest_iterations=1, n_epochs=1, input_hw=16, embed_dim=8)
        assert solver.executor.encoder is enc
