"""Chunk distribution: the precomputed owner map and block layout."""

from __future__ import annotations

import pytest

from repro.core import GPUAssignment, distribute_chunks


class TestOwnerMap:
    @pytest.mark.parametrize("n_chunks,n_gpus", [(1, 1), (8, 2), (10, 3), (64, 16), (5, 8)])
    def test_owner_matches_membership(self, n_chunks, n_gpus):
        a = distribute_chunks(n_chunks, n_gpus)
        for gpu, chunks in enumerate(a.per_gpu):
            for chunk in chunks:
                assert a.owner_of(chunk) == gpu

    def test_every_chunk_owned_exactly_once(self):
        a = distribute_chunks(13, 4)
        owners = [a.owner_of(c) for c in range(13)]
        assert len(owners) == 13
        assert sorted(set(owners)) == list(range(4))

    def test_unknown_chunk_raises(self):
        a = distribute_chunks(4, 2)
        with pytest.raises(KeyError):
            a.owner_of(4)
        with pytest.raises(KeyError):
            a.owner_of(-1)

    def test_manual_assignment_builds_map(self):
        a = GPUAssignment(per_gpu=((2, 5), (0,), (1, 3, 4)))
        assert a.owner_of(5) == 0
        assert a.owner_of(0) == 1
        assert a.owner_of(4) == 2

    def test_blocks_are_contiguous(self):
        a = distribute_chunks(10, 3)
        flat = [c for chunks in a.per_gpu for c in chunks]
        assert flat == list(range(10))
