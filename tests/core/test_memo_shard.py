"""Sharded memoization service: routing, batched API, aggregated stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MemoDatabase,
    MemoShardRouter,
    ShardInsert,
    ShardQuery,
    shard_of_location,
)


def make_db(dim: int) -> MemoDatabase:
    return MemoDatabase(dim=dim, tau=0.9, index_clusters=2, index_nprobe=2, train_min=4)


def key(seed: int, dim: int = 8) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(dim).astype(np.float32)


class TestRouting:
    def test_consistent_and_balanced(self):
        owners = [shard_of_location(loc, 4) for loc in range(64)]
        assert owners == [shard_of_location(loc, 4) for loc in range(64)]
        for s in range(4):
            assert owners.count(s) == 16

    def test_single_shard_owns_everything(self):
        assert all(shard_of_location(loc, 1) == 0 for loc in range(100))

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_of_location(3, 0)
        with pytest.raises(ValueError):
            MemoShardRouter(0, make_db)

    def test_router_matches_function(self):
        router = MemoShardRouter(3, make_db)
        for loc in range(20):
            assert router.shard_of(loc) == shard_of_location(loc, 3)
            assert router.shard_for(loc) is router.shards[router.shard_of(loc)]


class TestBatchedService:
    def test_insert_then_query_roundtrip(self):
        router = MemoShardRouter(2, make_db)
        k = key(0)
        v = np.arange(6, dtype=np.complex64)
        router.insert_batch([ShardInsert("Fu2D", 3, k, v, meta=(1.0, 0j))])
        [outcome] = router.query_batch([ShardQuery("Fu2D", 3, k)])
        assert outcome.hit
        np.testing.assert_array_equal(outcome.value, v)
        assert outcome.stored_meta == (1.0, 0j)

    def test_outcomes_keep_request_order_across_shards(self):
        router = MemoShardRouter(3, make_db)
        locs = [0, 1, 2, 3, 4, 5]
        inserts = [
            ShardInsert("Fu1D", loc, key(loc), np.full(4, loc, dtype=np.complex64))
            for loc in locs
        ]
        router.insert_batch(inserts)
        outcomes = router.query_batch(
            [ShardQuery("Fu1D", loc, key(loc)) for loc in reversed(locs)]
        )
        for loc, outcome in zip(reversed(locs), outcomes):
            assert outcome.hit
            np.testing.assert_array_equal(
                outcome.value, np.full(4, loc, dtype=np.complex64)
            )

    def test_locations_partition_by_shard(self):
        router = MemoShardRouter(2, make_db)
        router.insert_batch(
            [ShardInsert("Fu1D", loc, key(loc), np.zeros(2, np.complex64)) for loc in range(6)]
        )
        assert router.shards[0].locations("Fu1D") == [0, 2, 4]
        assert router.shards[1].locations("Fu1D") == [1, 3, 5]

    def test_ops_partition_independently(self):
        """The same location under two ops is two independent partitions."""
        router = MemoShardRouter(2, make_db)
        va = np.full(3, 1, dtype=np.complex64)
        vb = np.full(3, 2, dtype=np.complex64)
        router.insert_batch([ShardInsert("Fu1D", 0, key(1), va)])
        router.insert_batch([ShardInsert("Fu2D", 0, key(1), vb)])
        [qa] = router.query_batch([ShardQuery("Fu1D", 0, key(1))])
        [qb] = router.query_batch([ShardQuery("Fu2D", 0, key(1))])
        np.testing.assert_array_equal(qa.value, va)
        np.testing.assert_array_equal(qb.value, vb)

    def test_query_miss_below_tau(self):
        router = MemoShardRouter(2, make_db)
        router.insert_batch([ShardInsert("Fu1D", 0, key(1), np.zeros(2, np.complex64))])
        [outcome] = router.query_batch([ShardQuery("Fu1D", 0, -key(1))])
        assert not outcome.hit


class TestStats:
    def test_aggregation_across_shards(self):
        router = MemoShardRouter(3, make_db)
        router.insert_batch(
            [ShardInsert("Fu1D", loc, key(loc), np.zeros(4, np.complex64)) for loc in range(9)]
        )
        router.query_batch([ShardQuery("Fu1D", loc, key(loc)) for loc in range(9)])
        agg = router.stats()
        assert agg.inserts == 9
        assert agg.queries == 9
        assert agg.hits == 9
        per = router.per_shard_stats()
        assert sum(s.queries for s in per) == agg.queries
        assert sum(s.inserts for s in per) == agg.inserts
        assert router.entries() == 9
        assert router.per_shard_entries() == [3, 3, 3]

    def test_shard_message_counters(self):
        router = MemoShardRouter(2, make_db)
        router.insert_batch(
            [ShardInsert("Fu1D", loc, key(loc), np.zeros(4, np.complex64)) for loc in range(4)]
        )
        router.query_batch([ShardQuery("Fu1D", loc, key(loc)) for loc in range(4)])
        # one batch hit both shards: one sub-message each
        assert [s.insert_messages for s in router.shards] == [1, 1]
        assert [s.query_messages for s in router.shards] == [1, 1]
        # each sub-message spans 2 single-location partitions -> 4 batched
        # per-partition calls in total
        assert router.stats().query_batches == 4
        assert router.stats().insert_batches == 4

    def test_merged_accessor_field_math(self):
        """Regression for the single merged ``stats()`` accessor: every
        counter is the exact field-wise sum over shards — nothing dropped,
        nothing double-counted — and merging never mutates the parts."""
        from repro.core import MemoDBStats

        parts = [
            MemoDBStats(queries=3, hits=1, inserts=2, bytes_inserted=10,
                        bytes_fetched=5, query_batches=1, insert_batches=1),
            MemoDBStats(queries=7, hits=4, inserts=0, bytes_inserted=0,
                        bytes_fetched=20, query_batches=2, insert_batches=0),
            MemoDBStats(),
        ]
        snapshot = [p.as_dict() for p in parts]
        agg = MemoDBStats.merged(parts)
        assert agg.as_dict() == {
            "queries": 10, "hits": 5, "inserts": 2, "bytes_inserted": 10,
            "bytes_fetched": 25, "query_batches": 3, "insert_batches": 1,
        }
        assert [p.as_dict() for p in parts] == snapshot
        assert agg.hit_rate == 0.5
        assert MemoDBStats.merged([]).as_dict() == MemoDBStats().as_dict()
        # delta is merge's inverse: (a merged b).delta(a) == b
        assert MemoDBStats.merged(parts).delta(parts[0]).as_dict() == (
            MemoDBStats.merged(parts[1:]).as_dict()
        )

    def test_router_stats_equals_manual_partition_sum(self):
        """The router's merged stats() must equal a hand-rolled walk over
        every shard's partitions (the aggregation it replaces)."""
        from repro.core import MemoDBStats

        router = MemoShardRouter(3, make_db)
        router.insert_batch(
            [ShardInsert("Fu1D", loc, key(loc), np.zeros(4, np.complex64))
             for loc in range(9)]
        )
        router.query_batch(
            [ShardQuery("Fu1D", loc, key(loc + 100)) for loc in range(9)]
        )
        manual = MemoDBStats()
        for shard in router.shards:
            for db in shard._dbs.values():
                manual.merge(db.stats)
        assert router.stats().as_dict() == manual.as_dict()
        assert router.stats("Fu1D").as_dict() == manual.as_dict()
        assert router.stats("Fu2D").as_dict() == MemoDBStats().as_dict()


class TestMemoDatabaseBatchAPI:
    def test_query_batch_matches_sequential_queries(self):
        db_a, db_b = make_db(8), make_db(8)
        keys = [key(i) for i in range(6)]
        vals = [np.full(3, i, dtype=np.complex64) for i in range(6)]
        db_a.insert_batch(list(zip(keys, vals, [None] * 6)))
        for k, v in zip(keys, vals):
            db_b.insert(k, v)
        batched = db_a.query_batch(keys)
        sequential = [db_b.query(k) for k in keys]
        for got, want in zip(batched, sequential):
            assert got.hit == want.hit
            assert got.similarity == pytest.approx(want.similarity)
            np.testing.assert_array_equal(got.value, want.value)
        assert db_a.stats.query_batches == 1
        assert db_a.stats.insert_batches == 1
        assert db_b.stats.query_batches == 0

    def test_empty_batches_are_noops(self):
        db = make_db(4)
        assert db.query_batch([]) == []
        assert db.insert_batch([]) == []
        assert db.stats.query_batches == 0
        assert db.stats.insert_batches == 0
