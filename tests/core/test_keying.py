"""Key pipeline: pooling fidelity, linearity, encoder contracts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PoolKeyEncoder, chunk_to_image, chunk_to_stack, pool3d
from repro.solvers.metrics import cosine_similarity


def _rand_chunk(rng, shape=(4, 16, 16)):
    return (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(
        np.complex64
    )


class TestPool3D:
    def test_target_shape(self, rng):
        out = pool3d(_rand_chunk(rng, (8, 16, 16)), (4, 8, 8))
        assert out.shape == (4, 8, 8)

    def test_thin_axes_kept(self, rng):
        out = pool3d(_rand_chunk(rng, (2, 16, 16)), (8, 8, 8))
        assert out.shape == (2, 8, 8)

    def test_preserves_mean(self, rng):
        c = _rand_chunk(rng, (4, 8, 8))
        out = pool3d(c, (2, 4, 4))
        assert np.isclose(out.mean(), c.mean(), rtol=1e-5)

    def test_constant_chunk_pools_to_constant(self):
        c = np.full((4, 8, 8), 2.5 + 1j, dtype=np.complex64)
        out = pool3d(c, (2, 4, 4))
        np.testing.assert_allclose(out, 2.5 + 1j, rtol=1e-6)

    def test_rejects_non_3d(self, rng):
        with pytest.raises(ValueError):
            pool3d(rng.standard_normal((4, 4)), (2, 2, 2))

    def test_linearity(self, rng):
        a = _rand_chunk(rng)
        b = _rand_chunk(rng)
        lhs = pool3d(2 * a + 3 * b, (2, 4, 4))
        rhs = 2 * pool3d(a, (2, 4, 4)) + 3 * pool3d(b, (2, 4, 4))
        np.testing.assert_allclose(lhs, rhs, rtol=1e-4)

    def test_padding_path(self, rng):
        # non-divisible shapes pad with zeros and still produce target bins
        out = pool3d(_rand_chunk(rng, (5, 9, 7)), (2, 4, 4))
        assert out.shape == (2, 4, 4)


class TestChunkToImage:
    def test_shape(self, rng):
        img = chunk_to_image(_rand_chunk(rng), 8)
        assert img.shape == (8, 8)

    def test_stack_shape(self, rng):
        st_ = chunk_to_stack(_rand_chunk(rng, (8, 16, 16)), 8, depth=4)
        assert st_.shape == (4, 8, 8)


class TestPoolKeyEncoder:
    def test_key_is_float32_vector(self, rng):
        enc = PoolKeyEncoder(key_hw=4, depth=4)
        key = enc.encode(_rand_chunk(rng))
        assert key.dtype == np.float32
        assert key.ndim == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PoolKeyEncoder(key_hw=1)
        with pytest.raises(ValueError):
            PoolKeyEncoder(depth=0)

    def test_key_is_mean_removed(self, rng):
        enc = PoolKeyEncoder(key_hw=4, depth=2)
        key = enc.encode(_rand_chunk(rng) + 100.0)  # huge DC offset
        # mean removal: adding a constant must not change the key direction
        key0 = enc.encode(_rand_chunk(rng))
        assert abs(key.mean()) < 1e-3 * np.abs(key).max()
        del key0

    def test_dc_invariance(self, rng):
        enc = PoolKeyEncoder(key_hw=4, depth=2)
        c = _rand_chunk(rng)
        k1 = enc.encode(c)
        k2 = enc.encode(c + (3.0 - 2.0j))
        np.testing.assert_allclose(k1, k2, atol=1e-3)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_key_similarity_tracks_chunk_similarity(self, seed):
        """The gate-fidelity property: cosine similarity of keys approximates
        cosine similarity of (mean-removed) chunks."""
        rng = np.random.default_rng(seed)
        base = _rand_chunk(rng, (4, 16, 16))
        other = base + 0.3 * _rand_chunk(rng, (4, 16, 16))
        enc = PoolKeyEncoder(key_hw=16, depth=4)
        key_cs = cosine_similarity(enc.encode(base), enc.encode(other))
        a = base - base.mean()
        b = other - other.mean()
        chunk_cs = cosine_similarity(a, b)
        assert key_cs == pytest.approx(chunk_cs, abs=0.05)

    def test_identical_chunks_have_cs_one(self, rng):
        enc = PoolKeyEncoder()
        c = _rand_chunk(rng)
        assert cosine_similarity(enc.encode(c), enc.encode(c.copy())) == pytest.approx(1.0)
