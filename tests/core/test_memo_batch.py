"""Batched memoization service: batch == scalar, zero-copy == serialized.

The batched ``query_batch``/``insert_batch`` paths must be *exact* drop-ins
for the scalar loops they replace — same outcomes bit for bit, same
``MemoDBStats`` byte/batch counters — across trained and cold (pretrain)
databases, and the zero-copy ``value_mode="array"`` must account every byte
exactly like the serialized store.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MemoDatabase
from repro.core.memo_db import MemoDBStats


def make_keys(rng, n, dim=8, dup_every=4):
    """Random keys with exact duplicates sprinkled in (memoization traffic
    repeats chunk keys across iterations)."""
    keys = rng.standard_normal((n, dim)).astype(np.float32)
    for i in range(dup_every, n, dup_every):
        keys[i] = keys[i - dup_every]
    return keys


def make_values(rng, n):
    return [
        (rng.standard_normal((3, 4)) + 1j * rng.standard_normal((3, 4))).astype(
            np.complex64
        )
        for _ in range(n)
    ]


def populated_pair(rng, n=48, train_min=16, value_mode="array", tau=0.9):
    """Two identically-populated databases (same insertion order/content)."""
    keys, values = make_keys(rng, n), make_values(rng, n)
    dbs = []
    for _ in range(2):
        db = MemoDatabase(dim=8, tau=tau, train_min=train_min, value_mode=value_mode)
        for k, v in zip(keys, values):
            db.insert(k, v, meta=(float(np.linalg.norm(v)), complex(v.mean())))
        dbs.append(db)
    return dbs[0], dbs[1]


def assert_outcomes_identical(a, b):
    assert len(a) == len(b)
    for oa, ob in zip(a, b):
        assert oa.hit == ob.hit
        assert oa.similarity == ob.similarity  # bit-identical, not approx
        assert oa.matched_id == ob.matched_id
        assert oa.n_entries == ob.n_entries
        assert oa.stored_meta == ob.stored_meta
        if oa.hit:
            np.testing.assert_array_equal(np.asarray(oa.value), np.asarray(ob.value))


def assert_stats_match(batched: MemoDBStats, scalar: MemoDBStats, query_batches, insert_batches):
    """Batched counters equal the scalar loop's, except the batch counts."""
    assert batched.queries == scalar.queries
    assert batched.hits == scalar.hits
    assert batched.inserts == scalar.inserts
    assert batched.bytes_inserted == scalar.bytes_inserted
    assert batched.bytes_fetched == scalar.bytes_fetched
    assert batched.query_batches == query_batches
    assert batched.insert_batches == insert_batches
    assert scalar.query_batches == 0
    assert scalar.insert_batches == 0


class TestQueryBatchEquivalence:
    def test_trained_batch_equals_scalar_loop(self, rng):
        db_b, db_s = populated_pair(rng, n=48, train_min=16)
        assert db_b.index.is_trained
        probes = np.concatenate(
            [make_keys(rng, 16), db_b._keys[3][None], db_b._keys[7][None]]
        )
        batched = db_b.query_batch(list(probes))
        scalar = [db_s.query(k) for k in probes]
        assert any(o.hit for o in batched)  # exercise the hit path
        assert_outcomes_identical(batched, scalar)
        assert_stats_match(db_b.stats, db_s.stats, query_batches=1, insert_batches=0)

    def test_cold_batch_equals_scalar_loop(self, rng):
        db_b, db_s = populated_pair(rng, n=10, train_min=100)
        assert not db_b.index.is_trained
        probes = np.concatenate([make_keys(rng, 6), db_b._keys[2][None]])
        batched = db_b.query_batch(list(probes))
        scalar = [db_s.query(k) for k in probes]
        assert any(o.hit for o in batched)
        assert_outcomes_identical(batched, scalar)
        assert_stats_match(db_b.stats, db_s.stats, query_batches=1, insert_batches=0)

    def test_cold_miss_hides_candidate_id(self, rng):
        db = MemoDatabase(dim=8, tau=0.999999, train_min=100)
        db.insert(make_keys(rng, 1)[0], np.zeros(2))
        (out,) = db.query_batch(make_keys(rng, 1))
        assert not out.hit and out.matched_id == -1

    def test_empty_batch_counts_nothing(self, rng):
        db = MemoDatabase(dim=8)
        assert db.query_batch([]) == []
        assert db.insert_batch([]) == []
        assert db.stats.queries == 0
        assert db.stats.query_batches == 0
        assert db.stats.insert_batches == 0

    def test_query_on_empty_database(self):
        db = MemoDatabase(dim=8)
        (out,) = db.query_batch([np.ones(8, dtype=np.float32)])
        assert not out.hit and out.similarity == -2.0 and out.matched_id == -1


class TestInsertBatchEquivalence:
    @pytest.mark.parametrize("train_min", [4, 10, 100])
    def test_batch_insert_equals_scalar_loop(self, rng, train_min):
        """Including train_min mid-batch: the quantizer trains at the same
        item either way, so ids and final state coincide."""
        keys, values = make_keys(rng, 14), make_values(rng, 14)
        items = [(k, v, ("m", i)) for i, (k, v) in enumerate(zip(keys, values))]
        db_b = MemoDatabase(dim=8, tau=0.9, train_min=train_min)
        db_s = MemoDatabase(dim=8, tau=0.9, train_min=train_min)
        ids_b = db_b.insert_batch(items)
        ids_s = [db_s.insert(k, v, meta=m) for k, v, m in items]
        assert ids_b == ids_s
        assert db_b.index.is_trained == db_s.index.is_trained
        assert len(db_b) == len(db_s)
        assert_stats_match(db_b.stats, db_s.stats, query_batches=0, insert_batches=1)
        probes = np.concatenate([keys[:5], make_keys(rng, 5)])
        assert_outcomes_identical(
            [db_b.query(k) for k in probes], [db_s.query(k) for k in probes]
        )

    def test_batch_insert_dim_validation(self, rng):
        db = MemoDatabase(dim=8)
        with pytest.raises(ValueError):
            db.insert_batch([(np.ones(5, dtype=np.float32), np.zeros(2), None)])
        # nothing was half-committed
        assert len(db) == 0 and db.stats.inserts == 0


class TestValueModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MemoDatabase(dim=8, value_mode="mmap")

    def test_array_and_bytes_modes_agree(self, rng):
        keys, values = make_keys(rng, 40), make_values(rng, 40)
        db_a = MemoDatabase(dim=8, tau=0.9, train_min=16, value_mode="array")
        db_b = MemoDatabase(dim=8, tau=0.9, train_min=16, value_mode="bytes")
        for db in (db_a, db_b):
            for k, v in zip(keys, values):
                db.insert(k, v)
        probes = np.concatenate([make_keys(rng, 12), db_a._keys[5][None]])
        out_a = db_a.query_batch(list(probes))
        out_b = db_b.query_batch(list(probes))
        assert any(o.hit for o in out_a)
        assert_outcomes_identical(out_a, out_b)
        # byte accounting must be identical: encoded_nbytes == len(encode_array)
        assert db_a.stats.bytes_inserted == db_b.stats.bytes_inserted
        assert db_a.stats.bytes_fetched == db_b.stats.bytes_fetched
        assert db_a.values.stats.bytes_in == db_b.values.stats.bytes_in
        assert db_a.values.stats.bytes_out == db_b.values.stats.bytes_out
        assert db_a.values.nbytes == db_b.values.nbytes

    def test_array_mode_hits_are_zero_copy_and_read_only(self, rng):
        db = MemoDatabase(dim=8, tau=0.5, train_min=100, value_mode="array")
        k = make_keys(rng, 1)[0]
        v = np.arange(6, dtype=np.complex64).reshape(2, 3)
        db.insert(k, v)
        out1, out2 = db.query(k), db.query(k)
        assert out1.hit and out1.value is out2.value  # the stored array itself
        assert not out1.value.flags.writeable
        np.testing.assert_array_equal(out1.value, v)

    def test_array_mode_insert_detaches_from_caller_buffer(self, rng):
        db = MemoDatabase(dim=8, tau=0.5, train_min=100, value_mode="array")
        k = make_keys(rng, 1)[0]
        v = np.ones(4, dtype=np.complex64)
        db.insert(k, v)
        v[:] = 99.0  # producer reuses its buffer
        np.testing.assert_array_equal(db.query(k).value, np.ones(4, dtype=np.complex64))

    def test_bytes_mode_round_trips_fresh_copies(self, rng):
        db = MemoDatabase(dim=8, tau=0.5, train_min=100, value_mode="bytes")
        k = make_keys(rng, 1)[0]
        db.insert(k, np.ones(4, dtype=np.complex64))
        out = db.query(k)
        assert out.hit and out.value.flags.writeable
