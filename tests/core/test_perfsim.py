"""Trace-driven performance simulation: calibration anchors and shapes."""

from __future__ import annotations

import pytest

from repro.cluster import ProblemDims
from repro.core import distribute_chunks, simulate_iteration
from repro.core.memo_engine import MemoEvent


DIMS = ProblemDims(n=1024, n_chunks=64)


def synthetic_trace(pattern=("miss", "db_hit", "cache_hit", "cache_hit"), n_chunks=8):
    trace = []
    for inner in range(4):
        for op in ("Fu1D", "Fu2D", "Fu2D*", "Fu1D*"):
            for c in range(n_chunks):
                trace.append(
                    MemoEvent(0, inner, op, c, pattern[c % len(pattern)], 0.95, 4096, 2**20)
                )
    return trace


class TestDistribution:
    def test_even_split(self):
        a = distribute_chunks(64, 4)
        assert a.max_load == a.min_load == 16

    def test_uneven_split_balanced(self):
        a = distribute_chunks(10, 3)
        assert a.max_load - a.min_load <= 1
        assert sum(len(c) for c in a.per_gpu) == 10

    def test_owner_lookup(self):
        a = distribute_chunks(8, 2)
        assert a.owner_of(0) == 0
        assert a.owner_of(7) == 1
        with pytest.raises(KeyError):
            a.owner_of(99)

    def test_invalid(self):
        with pytest.raises(ValueError):
            distribute_chunks(0, 2)


class TestCalibrationAnchors:
    def test_alg1_iteration_near_68s(self):
        """Figure 8(a): original ADMM-FFT at (1K)^3 ~ 68 s per iteration."""
        perf = simulate_iteration(DIMS, variant="alg1", n_inner=4)
        assert perf.iteration_time == pytest.approx(68.0, rel=0.15)

    def test_transfer_exposure_near_47pct(self):
        """Section 2: exposed transfers are ~47% of the total at (1K)^3."""
        perf = simulate_iteration(DIMS, variant="alg1", n_inner=4)
        assert 0.35 < perf.exposed_fraction < 0.6

    def test_lsp_dominates_iteration(self):
        perf = simulate_iteration(DIMS, variant="alg1", n_inner=4)
        assert perf.lsp_time / perf.iteration_time > 0.67

    def test_scaling_with_problem_size(self):
        """2K^3 / 1K^3 runtime ratio ~ 8-9x (O(N^3 log N) growth, paper:
        599/68 = 8.8)."""
        small = simulate_iteration(DIMS, variant="alg1").iteration_time
        big = simulate_iteration(
            ProblemDims(n=2048, n_chunks=64), variant="alg1"
        ).iteration_time
        assert 6.0 < big / small < 12.0


class TestVariants:
    def test_cancellation_reduces_lsp(self):
        alg1 = simulate_iteration(DIMS, variant="alg1").lsp_time
        fused = simulate_iteration(DIMS, variant="canc_fused").lsp_time
        assert fused < alg1

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            simulate_iteration(DIMS, variant="magic")

    def test_memoization_speeds_up_iteration(self):
        base = simulate_iteration(DIMS, variant="canc_fused").iteration_time
        memo = simulate_iteration(
            DIMS, variant="canc_fused", trace=synthetic_trace()
        ).iteration_time
        assert memo < base

    def test_all_miss_trace_close_to_no_memo(self):
        """Failed memoization costs little (paper: <2.5% difference)."""
        base = simulate_iteration(DIMS, variant="canc_fused").iteration_time
        allmiss = simulate_iteration(
            DIMS, variant="canc_fused", trace=synthetic_trace(("miss",))
        ).iteration_time
        assert allmiss == pytest.approx(base, rel=0.05)

    def test_coalescing_helps_under_memoization(self):
        on = simulate_iteration(
            DIMS, trace=synthetic_trace(("miss", "db_hit")), coalesce=True
        ).lsp_time
        off = simulate_iteration(
            DIMS, trace=synthetic_trace(("miss", "db_hit")), coalesce=False
        ).lsp_time
        assert on <= off * 1.01


class TestMultiGPU:
    def test_intra_node_speedup(self):
        t1 = simulate_iteration(DIMS, n_gpus=1).lsp_time
        t4 = simulate_iteration(DIMS, n_gpus=4).lsp_time
        assert t1 / t4 > 2.0

    def test_inter_node_diminishing_returns(self):
        trace = synthetic_trace(("miss", "db_hit", "db_hit", "cache_hit"))
        t4 = simulate_iteration(DIMS, n_gpus=4, trace=trace).lsp_time
        t8 = simulate_iteration(DIMS, n_gpus=8, trace=trace).lsp_time
        intra = simulate_iteration(DIMS, n_gpus=1, trace=trace).lsp_time / t4
        inter = t4 / t8
        assert inter < intra  # crossing nodes costs (paper Figure 14)

    def test_memory_nic_utilization_grows(self):
        trace = synthetic_trace(("miss", "db_hit", "db_hit", "cache_hit"))
        u1 = simulate_iteration(DIMS, n_gpus=1, trace=trace).memory_nic_utilization()
        u16 = simulate_iteration(DIMS, n_gpus=16, trace=trace).memory_nic_utilization()
        assert u16 > u1  # Figure 15

    def test_query_latencies_recorded(self):
        perf = simulate_iteration(DIMS, trace=synthetic_trace())
        assert len(perf.query_latencies) > 0
        assert all(v >= 0 for v in perf.query_latencies)


class TestShardedMemoryNode:
    TRACE = staticmethod(lambda: synthetic_trace(("miss", "db_hit", "db_hit", "cache_hit")))

    def test_single_shard_identical_to_default(self):
        base = simulate_iteration(DIMS, n_gpus=8, trace=self.TRACE(), db_keys=10**6)
        one = simulate_iteration(
            DIMS, n_gpus=8, trace=self.TRACE(), db_keys=10**6, n_shards=1
        )
        assert one.lsp_time == base.lsp_time
        assert len(one.query_latencies) == len(base.query_latencies)

    def test_sharding_never_slows_the_iteration(self):
        for g in (4, 16):
            t1 = simulate_iteration(
                DIMS, n_gpus=g, trace=self.TRACE(), db_keys=10**8, n_shards=1
            ).lsp_time
            t4 = simulate_iteration(
                DIMS, n_gpus=g, trace=self.TRACE(), db_keys=10**8, n_shards=4
            ).lsp_time
            assert t4 <= t1 * 1.001

    def test_shard_resources_materialized_and_used(self):
        perf = simulate_iteration(
            DIMS, n_gpus=8, trace=self.TRACE(), db_keys=10**6, n_shards=4
        )
        names = set(perf.timeline.resources)
        assert {"memnode/index", "memnode/index/1", "memnode/index/2",
                "memnode/index/3"} <= names
        for name in ("memnode/index", "memnode/index/1"):
            assert perf.timeline.resources[name].busy_time > 0

    def test_all_queries_answered_regardless_of_shards(self):
        base = simulate_iteration(DIMS, n_gpus=8, trace=self.TRACE(), db_keys=10**6)
        sharded = simulate_iteration(
            DIMS, n_gpus=8, trace=self.TRACE(), db_keys=10**6, n_shards=3
        )
        assert len(sharded.query_latencies) == len(base.query_latencies)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            simulate_iteration(DIMS, n_shards=0)


class TestTraceByLocation:
    def test_location_mapping_preserves_block_structure(self):
        """An all-miss lower half / all-hit upper half sim trace must map to
        the same split at paper scale (round-robin would interleave it)."""
        trace = []
        for inner in range(2):
            for op in ("Fu1D", "Fu2D"):
                for c in range(8):
                    case = "miss" if c < 4 else "db_hit"
                    trace.append(MemoEvent(0, inner, op, c, case, 0.9, 4096, 2**20))
        from repro.core.perfsim import _trace_lookup

        lookup = _trace_lookup(trace, 64, by_location=True)
        for paper_chunk in range(32):
            assert lookup(0, "Fu1D", paper_chunk) == "miss"
        for paper_chunk in range(32, 64):
            assert lookup(0, "Fu1D", paper_chunk) == "db_hit"

    def test_ragged_ops_scale_by_their_own_location_count(self):
        """Regression: location counts are per op (Fu1D sweeps the volume
        axis, Fu2D the detector rows).  An op with fewer sim locations must
        still cover the whole paper chunk range instead of falling off the
        end into CASE_MISS."""
        from repro.core.perfsim import _trace_lookup

        trace = []
        for c in range(6):  # Fu1D: 6 locations, all hits
            trace.append(MemoEvent(0, 0, "Fu1D", c, "db_hit", 0.9, 4096, 2**20))
        for c in range(4):  # Fu2D: 4 locations, all hits
            trace.append(MemoEvent(0, 0, "Fu2D", c, "db_hit", 0.9, 4096, 2**20))
        lookup = _trace_lookup(trace, 64, by_location=True)
        for paper_chunk in range(64):
            assert lookup(0, "Fu1D", paper_chunk) == "db_hit"
            assert lookup(0, "Fu2D", paper_chunk) == "db_hit"

    def test_unknown_op_defaults_to_miss(self):
        from repro.core.perfsim import _trace_lookup

        lookup = _trace_lookup(
            [MemoEvent(0, 0, "Fu1D", 0, "db_hit", 0.9, 4096, 2**20)], 64,
            by_location=True,
        )
        assert lookup(3, "Fu2D*", 0) == "miss"

    def test_runs_end_to_end(self):
        perf = simulate_iteration(
            DIMS, n_gpus=4, trace=synthetic_trace(), db_keys=10**6,
            n_shards=2, trace_by_location=True,
        )
        assert perf.lsp_time > 0


class TestSimulatePipeline:
    """The overlapped-phase model: makespan = max(stage) + fill/drain."""

    def test_single_chunk_equals_serial(self):
        from repro.core.perfsim import simulate_pipeline

        p = simulate_pipeline(1, 0.01, 0.03, 0.005)
        assert p.pipelined_time == pytest.approx(p.serial_time)

    def test_bounded_by_model(self):
        from repro.core.perfsim import simulate_pipeline

        for q in (1, 2, 4):
            for w in (1, 2, 4):
                p = simulate_pipeline(64, 0.01, 0.03, 0.008, queue_depth=q, n_workers=w)
                assert p.pipelined_time <= p.serial_time * (1 + 1e-12)
                assert p.pipelined_time >= p.bottleneck_time * (1 - 1e-12)
                assert p.speedup <= p.speedup_bound * (1 + 1e-9)

    def test_io_overlap_beats_serial(self):
        from repro.core.perfsim import simulate_pipeline

        p = simulate_pipeline(32, 0.01, 0.02, 0.01, queue_depth=2)
        assert p.pipelined_time < p.serial_time
        assert p.io_time > 0

    def test_no_io_no_speedup(self):
        from repro.core.perfsim import simulate_pipeline

        p = simulate_pipeline(32, 0.0, 0.02, 0.0, queue_depth=4)
        assert p.pipelined_time == pytest.approx(p.serial_time)

    def test_deeper_queues_and_workers_monotone(self):
        from repro.core.perfsim import simulate_pipeline

        t = [
            simulate_pipeline(48, 0.01, 0.03, 0.01, queue_depth=q).pipelined_time
            for q in (1, 2, 4, 8)
        ]
        assert all(b <= a * (1 + 1e-12) for a, b in zip(t, t[1:]))
        tw = [
            simulate_pipeline(48, 0.001, 0.05, 0.001, queue_depth=8, n_workers=w).pipelined_time
            for w in (1, 2, 4)
        ]
        assert tw[-1] < tw[0]

    def test_validation(self):
        from repro.core.perfsim import simulate_pipeline

        with pytest.raises(ValueError):
            simulate_pipeline(0, 0.1, 0.1, 0.1)
        with pytest.raises(ValueError):
            simulate_pipeline(4, 0.1, 0.1, 0.1, queue_depth=0)
        with pytest.raises(ValueError):
            simulate_pipeline(4, 0.1, 0.1, 0.1, n_workers=0)
        with pytest.raises(ValueError):
            simulate_pipeline(4, -0.1, 0.1, 0.1)
