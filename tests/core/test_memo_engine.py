"""Memoized executor: correctness invariants against the direct executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MemoConfig, MemoizedExecutor, MLRConfig, MLRSolver
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.solvers import ADMMConfig, ADMMSolver, DirectExecutor, accuracy


@pytest.fixture(scope="module")
def problem():
    n = 16
    g = LaminoGeometry((n, n, n), n_angles=12, det_shape=(n, n), tilt_deg=61.0)
    ops = LaminoOperators(g)
    truth = brain_like(g.vol_shape, seed=7)
    d = simulate_data(truth, g, noise_level=0.03, seed=1)
    return g, ops, truth, d


def memo_cfg(**over):
    base = dict(
        tau=0.92, warmup_iterations=1, index_train_min=4, index_clusters=2,
        index_nprobe=2,
    )
    base.update(over)
    return MemoConfig(**base)


ADMM = ADMMConfig(n_outer=6, n_inner=3, step_max_rel=4.0)


class TestEquivalence:
    def test_impossible_tau_matches_direct_bitwise(self, problem):
        """With tau -> 1 nothing is ever served, so mLR must equal the
        original ADMM-FFT bit for bit (the Section 3 claim)."""
        g, ops, truth, d = problem
        ref = ADMMSolver(ops, ADMM, executor=DirectExecutor(ops, chunk_size=4)).run(d)
        ex = MemoizedExecutor(ops, config=memo_cfg(tau=1.0), chunk_size=4)
        res = ADMMSolver(ops, ADMM, executor=ex).run(d)
        np.testing.assert_array_equal(ref.u, res.u)

    def test_warmup_iterations_bypass_memoization(self, problem):
        g, ops, truth, d = problem
        ex = MemoizedExecutor(ops, config=memo_cfg(warmup_iterations=100), chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        assert set(ev.case for ev in ex.events) == {"direct"}

    def test_memoization_preserves_reconstruction(self, problem):
        g, ops, truth, d = problem
        ref = ADMMSolver(ops, ADMM).run(d)
        solver = MLRSolver(
            g, MLRConfig(chunk_size=4, memo=memo_cfg()), admm=ADMM, ops=ops
        )
        res = solver.reconstruct(d)
        assert accuracy(ref.u.real, res.u.real) > 0.5
        assert res.memoized_fraction > 0.2


class TestEventTrace:
    def test_events_cover_all_ops_and_iterations(self, problem):
        g, ops, truth, d = problem
        ex = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        ops_seen = {ev.op for ev in ex.events}
        assert ops_seen == {"Fu1D", "Fu2D", "Fu2D*", "Fu1D*"}
        outers = {ev.outer for ev in ex.events}
        assert outers == set(range(ADMM.n_outer))

    def test_case_counts_sum_to_events(self, problem):
        g, ops, truth, d = problem
        ex = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        counts = ex.case_counts()
        assert sum(counts.values()) == len(ex.events)

    def test_bounded_staleness_forces_refresh(self, problem):
        """No location may be served more than max_consecutive_reuse times
        in a row."""
        g, ops, truth, d = problem
        cfg = memo_cfg(max_consecutive_reuse=2)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        streak: dict = {}
        for ev in ex.events:
            k = (ev.op, ev.chunk)
            if ev.case in ("db_hit", "cache_hit"):
                streak[k] = streak.get(k, 0) + 1
                assert streak[k] <= 2, f"{k} served {streak[k]} times consecutively"
            else:
                streak[k] = 0

    def test_similarity_census_tracks_history(self, problem):
        g, ops, truth, d = problem
        cfg = memo_cfg(track_similarity_census=True, warmup_iterations=100)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        census = ex.similarity_census("Fu2D", tau=0.9)
        assert len(census) == 4  # 16/4 chunk locations
        for counts in census.values():
            assert counts[0] == 0  # first key has no priors
            assert all(c <= i for i, c in enumerate(counts))


class TestAffineReuse:
    def test_scaled_input_served_exactly(self, problem):
        """A pure rescaling of a stored chunk must be served (nearly)
        exactly — the linearity property affine reuse exploits."""
        g, ops, truth, d = problem
        from repro.lamino.chunking import Chunk

        cfg = memo_cfg(warmup_iterations=0, max_consecutive_reuse=100)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=4)
        ex.begin_outer(1)  # past warmup
        rng = np.random.default_rng(0)
        chunk = Chunk(index=0, axis=0, lo=0, hi=4)
        x = (rng.standard_normal((4, 16, 16)) + 1j * rng.standard_normal((4, 16, 16))).astype(np.complex64)
        first = ex._run_fu1d(chunk, x)
        served = ex._run_fu1d(chunk, (2.0 * x).astype(np.complex64))
        true = ops.fu1d(2.0 * x)
        assert ex.events[-1].case in ("db_hit", "cache_hit")
        assert np.linalg.norm(served - true) < 1e-3 * np.linalg.norm(true)
        del first

    def test_dc_shift_served_exactly(self, problem):
        """Adding a DC offset to a stored chunk is handled exactly by the
        dc-basis correction."""
        g, ops, truth, d = problem
        from repro.lamino.chunking import Chunk

        cfg = memo_cfg(warmup_iterations=0, max_consecutive_reuse=100)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=4)
        ex.begin_outer(1)
        rng = np.random.default_rng(1)
        chunk = Chunk(index=1, axis=0, lo=4, hi=8)
        x = (rng.standard_normal((4, 16, 16)) + 1j * rng.standard_normal((4, 16, 16))).astype(np.complex64)
        ex._run_fu1d(chunk, x)
        shifted = (x + (0.5 - 0.25j)).astype(np.complex64)
        served = ex._run_fu1d(chunk, shifted)
        true = ops.fu1d(shifted)
        assert ex.events[-1].case in ("db_hit", "cache_hit")
        assert np.linalg.norm(served - true) < 1e-2 * np.linalg.norm(true)

    def test_fused_subtraction_applied_after_reuse(self, problem):
        g, ops, truth, d = problem
        from repro.lamino.chunking import Chunk

        cfg = memo_cfg(warmup_iterations=0, max_consecutive_reuse=100)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=16)
        ex.begin_outer(1)
        rng = np.random.default_rng(2)
        chunk = Chunk(index=0, axis=0, lo=0, hi=16)
        x = (rng.standard_normal((16, 16, 16)) + 1j * rng.standard_normal((16, 16, 16))).astype(np.complex64)
        sub = (rng.standard_normal(g.data_shape) + 0j).astype(np.complex64)
        ex._run_fu2d(chunk, x, None)  # prime
        out = ex._run_fu2d(chunk, x, sub)  # cache hit + subtraction outside
        want = ops.fu2d(x) - sub
        assert np.linalg.norm(out - want) < 1e-3 * np.linalg.norm(want)


class TestCoalescerFlush:
    def test_no_pending_keys_after_each_sweep(self, problem):
        """Regression: the tail batch of every op sweep must be force-emitted
        — a leaked tail skews the Figure 11 message statistics."""
        g, ops, truth, d = problem
        ex = MemoizedExecutor(ops, config=memo_cfg(warmup_iterations=0), chunk_size=4)
        ex.begin_outer(1)
        rng = np.random.default_rng(0)
        u = (rng.standard_normal((16, 16, 16)) + 0j).astype(np.complex64)
        for sweep in (ex.fu1d, ex.fu1d_adj):
            sweep(u)
            assert ex.coalescer.pending == 0
        r = (rng.standard_normal(g.data_shape) + 0j).astype(np.complex64)
        ex.fu2d_adj(r)
        assert ex.coalescer.pending == 0

    def test_begin_inner_flushes(self, problem):
        g, ops, truth, d = problem
        ex = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4)
        ex.coalescer.offer(("Fu1D", 0))
        assert ex.coalescer.pending == 1
        ex.begin_inner(0)
        assert ex.coalescer.pending == 0
        assert ex.coalescer.stats.messages == 1

    def test_message_count_for_non_multiple_key_stream(self, problem):
        """7 keys at 3 keys/message must yield exactly 3 messages (2 full +
        1 tail), with every key accounted for."""
        g, ops, truth, d = problem
        ex = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4)
        ex.coalescer = type(ex.coalescer)(key_bytes=100, payload_bytes=300)
        for i in range(7):
            ex.coalescer.offer(("Fu1D", i))
        ex.flush_coalescers()
        stats = ex.coalescer.stats
        assert stats.keys == 7
        assert stats.messages == 3
        assert stats.batch_sizes == [3, 3, 1]
        assert stats.mean_batch == pytest.approx(7 / 3)
        assert ex.coalescer.pending == 0

    def test_full_run_leaves_nothing_pending_and_counts_every_key(self, problem):
        g, ops, truth, d = problem
        ex = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        stats = ex.coalescer.stats
        assert ex.coalescer.pending == 0
        assert stats.keys > 0
        assert stats.keys == sum(stats.batch_sizes)
        # every offered key reached the database as a query
        total_queries = sum(
            ex.db_stats(op).queries for op in ("Fu1D", "Fu2D", "Fu2D*", "Fu1D*")
        )
        assert stats.keys == total_queries


class TestPerOpLocationCounts:
    def test_fu1d_counts_follow_volume_axis(self):
        """Regression: Fu1D/Fu1D* chunk along the volume x-axis, not the
        detector rows — the counts diverge when the heights differ."""
        g = LaminoGeometry((24, 16, 16), n_angles=12, det_shape=(16, 16), tilt_deg=61.0)
        ops = LaminoOperators(g)
        ex = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4)
        assert ex.n_locations_for("Fu1D") == 6
        assert ex.n_locations_for("Fu1D*") == 6
        assert ex.n_locations_for("Fu2D") == 4
        assert ex.n_locations_for("Fu2D*") == 4

    def test_global_cache_capacity_sized_per_op(self):
        g = LaminoGeometry((24, 16, 16), n_angles=12, det_shape=(16, 16), tilt_deg=61.0)
        ops = LaminoOperators(g)
        ex = MemoizedExecutor(ops, config=memo_cfg(cache="global"), chunk_size=4)
        assert ex._state["Fu1D"].cache.capacity == 6
        assert ex._state["Fu2D"].cache.capacity == 4

    def test_explicit_override_wins(self):
        g = LaminoGeometry((24, 16, 16), n_angles=12, det_shape=(16, 16), tilt_deg=61.0)
        ops = LaminoOperators(g)
        ex = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4, n_locations=9)
        assert ex.n_locations_for("Fu1D") == 9
        assert ex.n_locations_for("Fu2D") == 9

    def test_ragged_volume_runs_end_to_end(self):
        """A volume taller than the detector exercises both axis lengths."""
        g = LaminoGeometry((24, 16, 16), n_angles=12, det_shape=(16, 16), tilt_deg=61.0)
        ops = LaminoOperators(g)
        truth = brain_like(g.vol_shape, seed=3)
        d = simulate_data(truth, g, noise_level=0.03, seed=1)
        ex = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4)
        ADMMSolver(ops, ADMMConfig(n_outer=3, n_inner=2, step_max_rel=4.0), executor=ex).run(d)
        fu1d_locs = {ev.chunk for ev in ex.events if ev.op == "Fu1D"}
        fu2d_locs = {ev.chunk for ev in ex.events if ev.op == "Fu2D"}
        assert fu1d_locs == set(range(6))
        assert fu2d_locs == set(range(4))


class TestReconstructEdgeCases:
    def _executor(self, ops, **over):
        cfg = memo_cfg(warmup_iterations=0, max_consecutive_reuse=100, **over)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=4)
        ex.begin_outer(1)
        return ex

    def test_zero_ac_stored_chunk_serves_dc_exactly(self, problem):
        """Stored pair with ac_a == 0 (a pure constant chunk): the AC scale
        factor degenerates to 0 and the served value must be exactly
        dc_q * basis — the DC-only reconstruction."""
        g, ops, truth, d = problem
        from repro.lamino.chunking import Chunk

        ex = self._executor(ops)
        chunk = Chunk(index=0, axis=0, lo=0, hi=4)
        dc_a, dc_q = 0.7 - 0.2j, -0.3 + 0.5j
        ones = np.ones((4, 16, 16), dtype=np.complex64)
        stored_value = (np.complex64(dc_a) * ops.fu1d(ones)).astype(np.complex64)
        query = np.full((4, 16, 16), dc_q, dtype=np.complex64)
        served = ex._reconstruct(
            "Fu1D", chunk, query, stored_value, (0.0, dc_a), ex._chunk_meta(query)
        )
        true = ops.fu1d(query)
        assert np.linalg.norm(served - true) < 1e-3 * np.linalg.norm(true)

    def test_scale_correction_off_returns_raw_copy(self, problem):
        g, ops, truth, d = problem
        from repro.lamino.chunking import Chunk

        ex = self._executor(ops, scale_correction=False)
        chunk = Chunk(index=0, axis=0, lo=0, hi=4)
        rng = np.random.default_rng(5)
        x = (rng.standard_normal((4, 16, 16)) + 1j * rng.standard_normal((4, 16, 16))).astype(np.complex64)
        stored = ex._run_fu1d(chunk, x)
        served = ex._run_fu1d(chunk, (2.0 * x).astype(np.complex64))
        assert ex.events[-1].case in ("db_hit", "cache_hit")
        # raw reuse: the stored value verbatim, not a rescaled estimate
        np.testing.assert_array_equal(served, stored)
        served[0, 0, 0] = 99.0  # must be a copy, not an alias of the cache
        again = ex._run_fu1d(chunk, (2.0 * x).astype(np.complex64))
        assert again[0, 0, 0] != 99.0

    def test_served_value_preserves_dtype(self, problem):
        g, ops, truth, d = problem
        from repro.lamino.chunking import Chunk

        ex = self._executor(ops)
        chunk = Chunk(index=1, axis=0, lo=4, hi=8)
        rng = np.random.default_rng(6)
        x = (rng.standard_normal((4, 16, 16)) + 1j * rng.standard_normal((4, 16, 16))).astype(np.complex64)
        ex._run_fu1d(chunk, x)
        served = ex._run_fu1d(chunk, (1.5 * x).astype(np.complex64))
        assert ex.events[-1].case in ("db_hit", "cache_hit")
        assert served.dtype == np.complex64

    def test_none_meta_returns_copy(self, problem):
        """A stored value without reuse metadata falls back to raw reuse."""
        g, ops, truth, d = problem
        from repro.lamino.chunking import Chunk

        ex = self._executor(ops)
        chunk = Chunk(index=0, axis=0, lo=0, hi=4)
        value = np.arange(8, dtype=np.complex64)
        out = ex._reconstruct("Fu1D", chunk, value, value, None, (1.0, 0j))
        np.testing.assert_array_equal(out, value)
        assert out is not value


class TestSimilarityCensusVectorized:
    def test_matches_bruteforce_pairwise_loop(self, problem):
        from repro.solvers.metrics import cosine_similarity

        g, ops, truth, d = problem
        cfg = memo_cfg(track_similarity_census=True, warmup_iterations=100)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        for tau in (0.5, 0.9, 0.99):
            census = ex.similarity_census("Fu2D", tau=tau)
            for location, keys in ex._state["Fu2D"].key_history.items():
                brute = [
                    sum(1 for prev in keys[:i] if cosine_similarity(k, prev) > tau)
                    for i, k in enumerate(keys)
                ]
                assert census[location] == brute

    def test_zero_keys_count_nothing(self, problem):
        g, ops, truth, d = problem
        cfg = memo_cfg(track_similarity_census=True)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=4)
        zero = np.zeros(8, dtype=np.float32)
        ex._state["Fu2D"].key_history[0] = [zero, zero, zero]
        census = ex.similarity_census("Fu2D", tau=0.5)
        assert census[0] == [0, 0, 0]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tau": 0.0},
            {"tau": 1.5},
            {"encoder": "transformer"},
            {"cache": "both"},
            {"key_hw": 1},
            {"warmup_iterations": -1},
        ],
    )
    def test_invalid_memo_config(self, kwargs):
        with pytest.raises(ValueError):
            MemoConfig(**kwargs)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            MLRConfig(chunk_size=0)

    def test_cnn_without_encoder_instance_rejected(self, problem):
        g, ops, *_ = problem
        with pytest.raises(ValueError):
            MemoizedExecutor(ops, config=memo_cfg(encoder="cnn"))
