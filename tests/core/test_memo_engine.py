"""Memoized executor: correctness invariants against the direct executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MemoConfig, MemoizedExecutor, MLRConfig, MLRSolver
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.solvers import ADMMConfig, ADMMSolver, DirectExecutor, accuracy


@pytest.fixture(scope="module")
def problem():
    n = 16
    g = LaminoGeometry((n, n, n), n_angles=12, det_shape=(n, n), tilt_deg=61.0)
    ops = LaminoOperators(g)
    truth = brain_like(g.vol_shape, seed=7)
    d = simulate_data(truth, g, noise_level=0.03, seed=1)
    return g, ops, truth, d


def memo_cfg(**over):
    base = dict(
        tau=0.92, warmup_iterations=1, index_train_min=4, index_clusters=2,
        index_nprobe=2,
    )
    base.update(over)
    return MemoConfig(**base)


ADMM = ADMMConfig(n_outer=6, n_inner=3, step_max_rel=4.0)


class TestEquivalence:
    def test_impossible_tau_matches_direct_bitwise(self, problem):
        """With tau -> 1 nothing is ever served, so mLR must equal the
        original ADMM-FFT bit for bit (the Section 3 claim)."""
        g, ops, truth, d = problem
        ref = ADMMSolver(ops, ADMM, executor=DirectExecutor(ops, chunk_size=4)).run(d)
        ex = MemoizedExecutor(ops, config=memo_cfg(tau=1.0), chunk_size=4)
        res = ADMMSolver(ops, ADMM, executor=ex).run(d)
        np.testing.assert_array_equal(ref.u, res.u)

    def test_warmup_iterations_bypass_memoization(self, problem):
        g, ops, truth, d = problem
        ex = MemoizedExecutor(ops, config=memo_cfg(warmup_iterations=100), chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        assert set(ev.case for ev in ex.events) == {"direct"}

    def test_memoization_preserves_reconstruction(self, problem):
        g, ops, truth, d = problem
        ref = ADMMSolver(ops, ADMM).run(d)
        solver = MLRSolver(
            g, MLRConfig(chunk_size=4, memo=memo_cfg()), admm=ADMM, ops=ops
        )
        res = solver.reconstruct(d)
        assert accuracy(ref.u.real, res.u.real) > 0.5
        assert res.memoized_fraction > 0.2


class TestEventTrace:
    def test_events_cover_all_ops_and_iterations(self, problem):
        g, ops, truth, d = problem
        ex = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        ops_seen = {ev.op for ev in ex.events}
        assert ops_seen == {"Fu1D", "Fu2D", "Fu2D*", "Fu1D*"}
        outers = {ev.outer for ev in ex.events}
        assert outers == set(range(ADMM.n_outer))

    def test_case_counts_sum_to_events(self, problem):
        g, ops, truth, d = problem
        ex = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        counts = ex.case_counts()
        assert sum(counts.values()) == len(ex.events)

    def test_bounded_staleness_forces_refresh(self, problem):
        """No location may be served more than max_consecutive_reuse times
        in a row."""
        g, ops, truth, d = problem
        cfg = memo_cfg(max_consecutive_reuse=2)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        streak: dict = {}
        for ev in ex.events:
            k = (ev.op, ev.chunk)
            if ev.case in ("db_hit", "cache_hit"):
                streak[k] = streak.get(k, 0) + 1
                assert streak[k] <= 2, f"{k} served {streak[k]} times consecutively"
            else:
                streak[k] = 0

    def test_similarity_census_tracks_history(self, problem):
        g, ops, truth, d = problem
        cfg = memo_cfg(track_similarity_census=True, warmup_iterations=100)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=4)
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        census = ex.similarity_census("Fu2D", tau=0.9)
        assert len(census) == 4  # 16/4 chunk locations
        for counts in census.values():
            assert counts[0] == 0  # first key has no priors
            assert all(c <= i for i, c in enumerate(counts))


class TestAffineReuse:
    def test_scaled_input_served_exactly(self, problem):
        """A pure rescaling of a stored chunk must be served (nearly)
        exactly — the linearity property affine reuse exploits."""
        g, ops, truth, d = problem
        from repro.lamino.chunking import Chunk

        cfg = memo_cfg(warmup_iterations=0, max_consecutive_reuse=100)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=4)
        ex.begin_outer(1)  # past warmup
        rng = np.random.default_rng(0)
        chunk = Chunk(index=0, axis=0, lo=0, hi=4)
        x = (rng.standard_normal((4, 16, 16)) + 1j * rng.standard_normal((4, 16, 16))).astype(np.complex64)
        first = ex._run_fu1d(chunk, x)
        served = ex._run_fu1d(chunk, (2.0 * x).astype(np.complex64))
        true = ops.fu1d(2.0 * x)
        assert ex.events[-1].case in ("db_hit", "cache_hit")
        assert np.linalg.norm(served - true) < 1e-3 * np.linalg.norm(true)
        del first

    def test_dc_shift_served_exactly(self, problem):
        """Adding a DC offset to a stored chunk is handled exactly by the
        dc-basis correction."""
        g, ops, truth, d = problem
        from repro.lamino.chunking import Chunk

        cfg = memo_cfg(warmup_iterations=0, max_consecutive_reuse=100)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=4)
        ex.begin_outer(1)
        rng = np.random.default_rng(1)
        chunk = Chunk(index=1, axis=0, lo=4, hi=8)
        x = (rng.standard_normal((4, 16, 16)) + 1j * rng.standard_normal((4, 16, 16))).astype(np.complex64)
        ex._run_fu1d(chunk, x)
        shifted = (x + (0.5 - 0.25j)).astype(np.complex64)
        served = ex._run_fu1d(chunk, shifted)
        true = ops.fu1d(shifted)
        assert ex.events[-1].case in ("db_hit", "cache_hit")
        assert np.linalg.norm(served - true) < 1e-2 * np.linalg.norm(true)

    def test_fused_subtraction_applied_after_reuse(self, problem):
        g, ops, truth, d = problem
        from repro.lamino.chunking import Chunk

        cfg = memo_cfg(warmup_iterations=0, max_consecutive_reuse=100)
        ex = MemoizedExecutor(ops, config=cfg, chunk_size=16)
        ex.begin_outer(1)
        rng = np.random.default_rng(2)
        chunk = Chunk(index=0, axis=0, lo=0, hi=16)
        x = (rng.standard_normal((16, 16, 16)) + 1j * rng.standard_normal((16, 16, 16))).astype(np.complex64)
        sub = (rng.standard_normal(g.data_shape) + 0j).astype(np.complex64)
        ex._run_fu2d(chunk, x, None)  # prime
        out = ex._run_fu2d(chunk, x, sub)  # cache hit + subtraction outside
        want = ops.fu2d(x) - sub
        assert np.linalg.norm(out - want) < 1e-3 * np.linalg.norm(want)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tau": 0.0},
            {"tau": 1.5},
            {"encoder": "transformer"},
            {"cache": "both"},
            {"key_hw": 1},
            {"warmup_iterations": -1},
        ],
    )
    def test_invalid_memo_config(self, kwargs):
        with pytest.raises(ValueError):
            MemoConfig(**kwargs)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            MLRConfig(chunk_size=0)

    def test_cnn_without_encoder_instance_rejected(self, problem):
        g, ops, *_ = problem
        with pytest.raises(ValueError):
            MemoizedExecutor(ops, config=memo_cfg(encoder="cnn"))
