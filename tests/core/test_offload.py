"""ADMM-Offload planner: constraints, MT selection, baselines, trace parity."""

from __future__ import annotations

import pytest

from repro.cluster import CostModel, ProblemDims
from repro.core import IterationSchedule, OffloadPlanner, greedy_offload, lru_offload


@pytest.fixture(scope="module")
def setup():
    cost = CostModel()
    dims = ProblemDims(n=1024, n_chunks=64)
    sched = IterationSchedule.from_cost_model(dims, cost)
    return cost, dims, sched


class TestSchedule:
    def test_phase_order_and_durations(self, setup):
        _, _, sched = setup
        assert list(sched.phase_durations) == [
            "lsp", "rsp", "lambda_update", "penalty_update",
        ]
        assert all(v > 0 for v in sched.phase_durations.values())

    def test_lsp_dominates(self, setup):
        _, _, sched = setup
        lsp = sched.phase_durations["lsp"]
        assert lsp / sched.iteration_time > 0.6

    def test_access_times_sorted_and_in_range(self, setup):
        _, _, sched = setup
        for var in sched.variables:
            for first, last in sched.access_times(var):
                assert 0 <= first <= last <= sched.iteration_time

    def test_matches_solver_phase_trace(self):
        """The canonical access map must agree with what the real solver
        actually touches per phase (honest instrumentation)."""
        from repro.lamino import LaminoGeometry, LaminoOperators, simulate_data, brain_like
        from repro.memio import PhaseTrace
        from repro.solvers import ADMMConfig, ADMMSolver

        g = LaminoGeometry((16, 16, 16), n_angles=8, det_shape=(16, 16))
        ops = LaminoOperators(g)
        d = simulate_data(brain_like(g.vol_shape, seed=0), g)
        tracer = PhaseTrace()
        ADMMSolver(ops, ADMMConfig(n_outer=1, n_inner=2)).run(d, tracer=tracer)
        traced = tracer.phase_access_map(0)
        sched = IterationSchedule.from_cost_model(
            ProblemDims(n=1024, n_chunks=64), CostModel()
        )
        planned: dict[str, set] = {}
        for ap in sched.accesses:
            planned.setdefault(ap.phase, set()).add(ap.variable)
        # every traced access of the offload-candidate variables appears in
        # the canonical schedule (the schedule may add u/work refinements)
        for phase, vars_ in traced.items():
            for var in vars_ & {"psi", "lam", "g", "g_prev"}:
                assert var in planned[phase], (phase, var)


class TestPlanner:
    def test_candidates_are_alias_free(self, setup):
        cost, _, sched = setup
        planner = OffloadPlanner(sched, cost)
        cands = planner.candidates()
        assert "u" not in cands and "work" not in cands  # aliased
        assert {"psi", "lam", "g"} <= set(cands)

    def test_empty_plan_saves_nothing(self, setup):
        cost, _, sched = setup
        outcome = OffloadPlanner(sched, cost).evaluate(())
        assert outcome.memory_saving == 0.0
        assert outcome.exposed_time == 0.0

    def test_best_plan_positive_mt(self, setup):
        cost, _, sched = setup
        best = OffloadPlanner(sched, cost).best_plan()
        assert best.memory_saving > 0.0
        assert best.mt > 1.0  # better trade-off than 1:1

    def test_psi_lam_selected(self, setup):
        """The paper selects psi, lam (and g) for offloading."""
        cost, _, sched = setup
        best = OffloadPlanner(sched, cost).best_plan()
        assert "psi" in best.offloaded or "lam" in best.offloaded

    def test_constraint_prefetch_after_offload(self, setup):
        cost, _, sched = setup
        best = OffloadPlanner(sched, cost).best_plan()
        by_var: dict[str, list] = {}
        for a in best.actions:
            by_var.setdefault(a.variable, []).append(a)
        for actions in by_var.values():
            offs = [a for a in actions if a.kind == "offload"]
            pfs = [a for a in actions if a.kind == "prefetch"]
            for off, pf in zip(offs, pfs):
                assert pf.start >= off.end  # constraint (1)

    def test_rss_timeline_bounded(self, setup):
        cost, _, sched = setup
        best = OffloadPlanner(sched, cost).best_plan()
        peak_tl = max(v for _, v in best.rss_timeline)
        assert peak_tl == pytest.approx(best.peak_bytes, rel=1e-6)
        assert best.peak_bytes <= best.baseline_peak_bytes


class TestBaselines:
    def test_greedy_exposes_transfers(self, setup):
        cost, _, sched = setup
        greedy = greedy_offload(sched, cost)
        assert greedy.time_loss > 0.3  # paper: 81.5% loss

    def test_planner_beats_greedy_on_mt(self, setup):
        cost, _, sched = setup
        best = OffloadPlanner(sched, cost).best_plan()
        greedy = greedy_offload(sched, cost)
        assert best.mt > greedy.mt

    def test_lru_cannot_prefetch(self, setup):
        cost, _, sched = setup
        lru = lru_offload(sched, cost, capacity_fraction=0.7)
        best = OffloadPlanner(sched, cost).best_plan()
        assert lru.time_loss > best.time_loss  # paper: 40.5% worse

    def test_lru_capacity_validation(self, setup):
        cost, _, sched = setup
        with pytest.raises(ValueError):
            lru_offload(sched, cost, capacity_fraction=0.0)
