"""Distributed memoized executor: equivalence, sharding, per-worker stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DistributedMemoizedExecutor,
    MemoConfig,
    MemoizedExecutor,
    MLRConfig,
    MLRSolver,
    shard_of_location,
)
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.solvers import ADMMConfig, ADMMSolver


@pytest.fixture(scope="module")
def problem():
    n = 16
    g = LaminoGeometry((n, n, n), n_angles=12, det_shape=(n, n), tilt_deg=61.0)
    ops = LaminoOperators(g)
    truth = brain_like(g.vol_shape, seed=7)
    d = simulate_data(truth, g, noise_level=0.03, seed=1)
    return g, ops, truth, d


def memo_cfg(**over):
    base = dict(
        tau=0.92, warmup_iterations=1, index_train_min=4, index_clusters=2,
        index_nprobe=2,
    )
    base.update(over)
    return MemoConfig(**base)


ADMM = ADMMConfig(n_outer=6, n_inner=3, step_max_rel=4.0)


@pytest.fixture(scope="module")
def reference(problem):
    """The single-worker MemoizedExecutor run everything is compared to."""
    g, ops, truth, d = problem
    ex = MemoizedExecutor(ops, config=memo_cfg(), chunk_size=4)
    res = ADMMSolver(ops, ADMM, executor=ex).run(d)
    return ex, res


class TestEquivalence:
    def test_single_worker_single_shard_identical(self, problem, reference):
        """Acceptance criterion: 1 worker x 1 shard reproduces the
        single-worker executor bit for bit — reconstruction and cases."""
        g, ops, truth, d = problem
        ref_ex, ref = reference
        ex = DistributedMemoizedExecutor(
            ops, config=memo_cfg(), chunk_size=4, n_workers=1, n_shards=1
        )
        res = ADMMSolver(ops, ADMM, executor=ex).run(d)
        np.testing.assert_array_equal(ref.u, res.u)
        assert ex.case_counts() == ref_ex.case_counts()

    @pytest.mark.parametrize("n_workers,n_shards", [(4, 2), (3, 3), (2, 4)])
    def test_worker_shard_counts_do_not_change_numerics(
        self, problem, reference, n_workers, n_shards
    ):
        """Private caches scope reuse to a location, and a location is owned
        by one worker and one shard — so the fleet shape is pure routing."""
        g, ops, truth, d = problem
        ref_ex, ref = reference
        ex = DistributedMemoizedExecutor(
            ops, config=memo_cfg(), chunk_size=4,
            n_workers=n_workers, n_shards=n_shards,
        )
        res = ADMMSolver(ops, ADMM, executor=ex).run(d)
        np.testing.assert_array_equal(ref.u, res.u)
        assert ex.case_counts() == ref_ex.case_counts()

    def test_aggregated_stats_match_single_worker(self, problem, reference):
        g, ops, truth, d = problem
        ref_ex, _ = reference
        ex = DistributedMemoizedExecutor(
            ops, config=memo_cfg(), chunk_size=4, n_workers=4, n_shards=2
        )
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        for op in ("Fu1D", "Fu2D", "Fu2D*", "Fu1D*"):
            ref_db = ref_ex.db_stats(op)
            db = ex.db_stats(op)
            assert (db.queries, db.hits, db.inserts) == (
                ref_db.queries, ref_db.hits, ref_db.inserts
            )
            assert ex.db_entries(op) == ref_ex.db_entries(op)
            ref_cache = ref_ex.cache_stats(op)
            cache = ex.cache_stats(op)
            assert (cache.hits, cache.misses) == (ref_cache.hits, ref_cache.misses)

    def test_mlr_solver_config_selects_distributed(self, problem):
        g, ops, truth, d = problem
        solver = MLRSolver(
            g,
            MLRConfig(chunk_size=4, memo=memo_cfg(), n_workers=4, n_shards=2),
            admm=ADMM,
            ops=ops,
        )
        assert isinstance(solver.executor, DistributedMemoizedExecutor)
        res = solver.reconstruct(d)
        assert res.memoized_fraction > 0.2

    def test_invalid_counts_rejected(self, problem):
        g, ops, truth, d = problem
        with pytest.raises(ValueError):
            DistributedMemoizedExecutor(ops, config=memo_cfg(), n_workers=0)
        with pytest.raises(ValueError):
            MLRConfig(n_shards=0)


class TestWorkersAndShards:
    @pytest.fixture(scope="class")
    def run(self, problem):
        g, ops, truth, d = problem
        ex = DistributedMemoizedExecutor(
            ops, config=memo_cfg(), chunk_size=4, n_workers=4, n_shards=2
        )
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        return ex

    def test_events_tag_owning_worker(self, run):
        for ev in run.events:
            assign = run.assignment_for(ev.op, run.n_locations_for(ev.op))
            assert ev.worker == assign.owner_of(ev.chunk)

    def test_events_tag_owning_shard(self, run):
        for ev in run.events:
            assert ev.shard == shard_of_location(ev.chunk, run.n_shards)

    def test_every_worker_executed_and_coalesced(self, run):
        workers = {ev.worker for ev in run.events}
        assert workers == set(range(4))
        for stats in run.per_worker_coalesce_stats():
            assert stats.keys > 0
            assert stats.messages > 0
            assert stats.keys == sum(stats.batch_sizes)

    def test_coalescers_drained_after_run(self, run):
        assert all(w.coalescer.pending == 0 for w in run.workers)
        assert all(not w.pending for w in run.workers)

    def test_shard_traffic_partitions_cleanly(self, run):
        per = run.per_shard_db_stats()
        agg = run.router.stats()
        assert sum(s.queries for s in per) == agg.queries
        assert sum(s.inserts for s in per) == agg.inserts
        assert all(s.queries > 0 for s in per)

    def test_shard_locations_respect_routing(self, run):
        for shard in run.router.shards:
            for loc in shard.locations():
                assert shard_of_location(loc, run.n_shards) == shard.shard_id

    def test_batched_db_api_is_the_real_call_path(self, run):
        """Real runs must exercise MemoDatabase.query_batch/insert_batch —
        the batched message service, not per-key fallbacks."""
        agg = run.router.stats()
        assert agg.query_batches > 0
        assert agg.insert_batches > 0

    def test_aggregated_coalesce_stats_cover_all_workers(self, run):
        agg = run.coalesce_stats()
        per = run.per_worker_coalesce_stats()
        assert agg.keys == sum(s.keys for s in per) > 0
        assert agg.messages == sum(s.messages for s in per) > 0
        assert agg.keys == sum(agg.batch_sizes)

    def test_per_worker_events_partition_the_trace(self, run):
        total = sum(len(run.worker_events(w)) for w in range(run.n_workers))
        assert total == len(run.events)

    def test_reset_state_clears_service(self, run, problem):
        g, ops, truth, d = problem
        ex = DistributedMemoizedExecutor(
            ops, config=memo_cfg(), chunk_size=4, n_workers=2, n_shards=2
        )
        ADMMSolver(ops, ADMM, executor=ex).run(d)
        assert ex.router.entries() > 0
        ex.reset_state()
        assert ex.router.entries() == 0
        assert all(w.coalescer.pending == 0 for w in ex.workers)
