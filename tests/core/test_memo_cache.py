"""Private vs global memoization caches (paper Section 4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GlobalMemoCache, PrivateMemoCache


def key(rng, dim=16):
    return rng.standard_normal(dim).astype(np.float32)


class TestPrivateCache:
    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            PrivateMemoCache(tau=0.0)

    def test_miss_on_empty(self, rng):
        c = PrivateMemoCache(tau=0.9)
        assert c.lookup(0, key(rng)) is None
        assert c.stats.misses == 1

    def test_hit_on_same_key(self, rng):
        c = PrivateMemoCache(tau=0.9)
        k = key(rng)
        c.insert(3, k, "value", meta=(1.0, 0j))
        hit = c.lookup(3, k)
        assert hit is not None and hit.value == "value"
        assert hit.meta == (1.0, 0j)

    def test_locations_are_isolated(self, rng):
        """A private cache never serves another location's entry."""
        c = PrivateMemoCache(tau=0.5)
        k = key(rng)
        c.insert(0, k, "value")
        assert c.lookup(1, k) is None

    def test_dissimilar_key_misses(self, rng):
        c = PrivateMemoCache(tau=0.99)
        c.insert(0, key(rng), "a")
        assert c.lookup(0, key(rng)) is None

    def test_fifo_single_entry_replacement(self, rng):
        c = PrivateMemoCache(tau=0.9)
        k1, k2 = key(rng), key(rng)
        c.insert(0, k1, "first")
        c.insert(0, k2, "second")
        assert c.lookup(0, k2).value == "second"
        assert c.lookup(0, k1) is None  # k1's entry was replaced
        assert len(c) == 1

    def test_one_comparison_per_lookup(self, rng):
        """The O(1) property the paper's 85% savings comes from."""
        c = PrivateMemoCache(tau=0.9)
        for loc in range(32):
            c.insert(loc, key(rng), loc)
        c.lookup(7, key(rng))
        assert c.stats.comparisons == 1

    def test_per_iteration_series(self, rng):
        c = PrivateMemoCache(tau=0.9)
        k = key(rng)
        c.insert(0, k, "v")
        c.lookup(0, k, iteration=0)
        c.lookup(0, key(rng), iteration=1)
        series = dict(c.stats.hit_rate_series())
        assert series[0] == 1.0 and series[1] == 0.0


class TestGlobalCache:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GlobalMemoCache(tau=1.5, capacity=4)
        with pytest.raises(ValueError):
            GlobalMemoCache(tau=0.9, capacity=0)

    def test_cross_location_sharing(self, rng):
        """The defining difference: any location's entry can serve."""
        c = GlobalMemoCache(tau=0.5, capacity=8)
        k = key(rng)
        c.insert(0, k, "value")
        hit = c.lookup(5, k)
        assert hit is not None and hit.value == "value"

    def test_comparisons_scale_with_size(self, rng):
        c = GlobalMemoCache(tau=0.9, capacity=64)
        for loc in range(32):
            c.insert(loc, key(rng), loc)
        c.stats.comparisons = 0
        c.lookup(0, key(rng))
        assert c.stats.comparisons == 32

    def test_fifo_eviction_at_capacity(self, rng):
        c = GlobalMemoCache(tau=0.9, capacity=2)
        keys = [key(rng) for _ in range(3)]
        for i, k in enumerate(keys):
            c.insert(i, k, i)
        assert len(c) == 2
        assert c.lookup(0, keys[0]) is None  # oldest evicted
        assert c.lookup(0, keys[2]).value == 2

    def test_best_match_wins(self, rng):
        c = GlobalMemoCache(tau=0.8, capacity=8)
        k = key(rng)
        near = (k + 0.01 * key(rng)).astype(np.float32)
        far = (k + 0.5 * key(rng)).astype(np.float32)
        c.insert(0, far, "far")
        c.insert(1, near, "near")
        assert c.lookup(9, k).value == "near"
