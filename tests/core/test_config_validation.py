"""Fail-fast validation of user-supplied configs.

The reconstruction service surfaces MLRConfig/ADMMConfig straight from
callers, so malformed values must raise a clear ValueError at construction
— not explode deep inside a worker thread mid-job.
"""

from __future__ import annotations

import pytest

from repro.core import MemoConfig, MLRConfig, PipelineConfig
from repro.solvers import ADMMConfig


class TestMLRConfig:
    def test_defaults_valid(self):
        MLRConfig()

    @pytest.mark.parametrize("bad", [0, -1])
    def test_chunk_size(self, bad):
        with pytest.raises(ValueError, match="chunk_size"):
            MLRConfig(chunk_size=bad)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_n_workers(self, bad):
        with pytest.raises(ValueError, match="n_workers"):
            MLRConfig(n_workers=bad)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_n_shards(self, bad):
        with pytest.raises(ValueError, match="n_shards"):
            MLRConfig(n_shards=bad)

    def test_memo_must_be_memo_config(self):
        with pytest.raises(ValueError, match="MemoConfig"):
            MLRConfig(memo={"tau": 0.9})

    def test_pipeline_must_be_pipeline_config(self):
        with pytest.raises(ValueError, match="PipelineConfig"):
            MLRConfig(pipeline=2)
        MLRConfig(pipeline=PipelineConfig(queue_depth=1))

    def test_memo_snapshot_types(self):
        MLRConfig(memo_snapshot=None)
        MLRConfig(memo_snapshot="/some/path")
        MLRConfig(memo_snapshot={"layout": "single", "partitions": []})
        with pytest.raises(ValueError, match="memo_snapshot"):
            MLRConfig(memo_snapshot=42)


class TestMemoConfig:
    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.0001])
    def test_tau_open_closed_interval(self, bad):
        with pytest.raises(ValueError, match="tau"):
            MemoConfig(tau=bad)

    def test_tau_boundary_one_allowed(self):
        MemoConfig(tau=1.0)

    def test_encoder_and_cache_enums(self):
        with pytest.raises(ValueError, match="encoder"):
            MemoConfig(encoder="transformer")
        with pytest.raises(ValueError, match="cache"):
            MemoConfig(cache="l2")
        with pytest.raises(ValueError, match="db_value_mode"):
            MemoConfig(db_value_mode="pickle")

    def test_numeric_knobs(self):
        with pytest.raises(ValueError, match="key_hw"):
            MemoConfig(key_hw=1)
        with pytest.raises(ValueError, match="warmup_iterations"):
            MemoConfig(warmup_iterations=-1)


class TestPipelineConfig:
    @pytest.mark.parametrize("bad", [0, -2])
    def test_queue_depths(self, bad):
        with pytest.raises(ValueError, match="queue_depth"):
            PipelineConfig(queue_depth=bad)
        with pytest.raises(ValueError, match="ingest_queue_depth"):
            PipelineConfig(ingest_queue_depth=bad)


class TestADMMConfig:
    def test_defaults_valid(self):
        ADMMConfig()

    def test_alpha_and_rho(self):
        with pytest.raises(ValueError, match="alpha"):
            ADMMConfig(alpha=-1e-3)
        with pytest.raises(ValueError, match="rho"):
            ADMMConfig(rho=0.0)

    def test_iteration_counts_individually_reported(self):
        with pytest.raises(ValueError, match="n_outer"):
            ADMMConfig(n_outer=0)
        with pytest.raises(ValueError, match="n_inner"):
            ADMMConfig(n_inner=0)

    def test_adaptation_knobs(self):
        with pytest.raises(ValueError, match="rho_mu"):
            ADMMConfig(rho_mu=0.0)
        with pytest.raises(ValueError, match="rho_scale"):
            ADMMConfig(rho_scale=1.0)
        with pytest.raises(ValueError, match="step_max_rel"):
            ADMMConfig(step_max_rel=0.0)

    def test_fusion_requires_cancellation(self):
        with pytest.raises(ValueError, match="fusion"):
            ADMMConfig(fusion=True, cancellation=False)
