"""ChunkEncoder architecture, contrastive training, and quantization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    ChunkEncoder,
    QuantizedEncoder,
    complex_to_channels,
    pair_loss,
    quantize_tensor,
    train_contrastive,
)


@pytest.fixture(scope="module")
def encoder():
    return ChunkEncoder(input_hw=16, embed_dim=12, seed=0)


def random_complex_images(rng, n, hw):
    return (rng.standard_normal((n, hw, hw)) + 1j * rng.standard_normal((n, hw, hw))).astype(
        np.complex64
    )


class TestArchitecture:
    def test_paper_layer_spec(self):
        """32 filters of 5x5, 64 filters of 3x3, then a fully connected layer."""
        enc = ChunkEncoder(input_hw=32, embed_dim=60)
        convs = [l for l in enc.net.layers if type(l).__name__ == "Conv2D"]
        assert convs[0].out_ch == 32 and convs[0].ksize == 5
        assert convs[1].out_ch == 64 and convs[1].ksize == 3
        assert enc.embed_dim == 60

    def test_forward_shape(self, encoder, rng):
        imgs = random_complex_images(rng, 3, 16)
        z = encoder.encode(imgs)
        assert z.shape == (3, 12)
        assert z.dtype == np.float32

    def test_input_hw_divisible_by_four(self):
        with pytest.raises(ValueError):
            ChunkEncoder(input_hw=18)

    def test_bad_input_shape_rejected(self, encoder, rng):
        with pytest.raises(ValueError):
            encoder.forward(rng.standard_normal((2, 2, 8, 8)).astype(np.float32))

    def test_deterministic_by_seed(self, rng):
        imgs = random_complex_images(rng, 2, 16)
        z1 = ChunkEncoder(16, 8, seed=5).encode(imgs)
        z2 = ChunkEncoder(16, 8, seed=5).encode(imgs)
        np.testing.assert_array_equal(z1, z2)

    def test_num_parameters_positive(self, encoder):
        assert encoder.num_parameters() > 1000


class TestComplexToChannels:
    def test_preserves_magnitude_and_phase(self, rng):
        img = random_complex_images(rng, 1, 8)
        ch = complex_to_channels(img)
        assert ch.shape == (1, 2, 8, 8)
        np.testing.assert_allclose(ch[0, 0] + 1j * ch[0, 1], img[0], rtol=1e-6)

    def test_rejects_wrong_ndim(self, rng):
        with pytest.raises(ValueError):
            complex_to_channels(rng.standard_normal((8, 8)).astype(np.complex64))


class TestPairLoss:
    def test_zero_when_distance_matches_label(self, rng):
        za = rng.standard_normal(6).astype(np.float32)
        zb = rng.standard_normal(6).astype(np.float32)
        label = float(np.linalg.norm(za - zb))
        loss, ga, gb = pair_loss(za, zb, label)
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_gradients_antisymmetric(self, rng):
        za = rng.standard_normal(6).astype(np.float32)
        zb = rng.standard_normal(6).astype(np.float32)
        _, ga, gb = pair_loss(za, zb, 0.1)
        np.testing.assert_allclose(ga, -gb)

    def test_degenerate_pair_no_nan(self):
        z = np.ones(4, dtype=np.float32)
        loss, ga, gb = pair_loss(z, z.copy(), 1.0)
        assert np.isfinite(loss)
        assert np.all(np.isfinite(ga))

    def test_gradient_direction_reduces_loss(self, rng):
        za = rng.standard_normal(6).astype(np.float32)
        zb = rng.standard_normal(6).astype(np.float32)
        label = 0.5 * float(np.linalg.norm(za - zb))
        loss0, ga, _ = pair_loss(za, zb, label)
        loss1, _, _ = pair_loss(za - 0.01 * ga, zb, label)
        assert loss1 < loss0


class TestTraining:
    def test_contrastive_training_reduces_loss(self, rng):
        enc = ChunkEncoder(input_hw=16, embed_dim=8, seed=1)
        imgs = random_complex_images(rng, 24, 16)
        report = train_contrastive(enc, imgs, n_epochs=8, batch_pairs=8, lr=3e-4, seed=0)
        assert report.losses[-1] < report.losses[0]

    def test_trained_embeddings_track_chunk_distance(self, rng):
        """After training, embedding distance must correlate with chunk
        distance — the property the memoization threshold tau depends on."""
        enc = ChunkEncoder(input_hw=16, embed_dim=8, seed=2)
        base = random_complex_images(rng, 1, 16)[0]
        # family of images at graded distances from `base`
        imgs = np.stack(
            [base + eps * random_complex_images(rng, 1, 16)[0] for eps in np.linspace(0, 2, 12)]
        ).astype(np.complex64)
        train_contrastive(enc, imgs, n_epochs=12, batch_pairs=12, lr=3e-4, seed=1)
        z = enc.encode(imgs)
        zdist = np.linalg.norm(z - z[0], axis=1)[1:]
        cdist = np.linalg.norm((imgs - imgs[0]).reshape(len(imgs), -1), axis=1)[1:]
        corr = np.corrcoef(zdist, cdist)[0, 1]
        assert corr > 0.7


class TestQuantization:
    def test_quantize_roundtrip_error_bounded(self, rng):
        x = rng.standard_normal((64, 64)).astype(np.float32)
        qt = quantize_tensor(x)
        assert qt.q.dtype == np.int8
        err = np.abs(qt.dequantize() - x).max()
        assert err <= qt.scale / 2 + 1e-7

    def test_zero_tensor(self):
        qt = quantize_tensor(np.zeros(4, dtype=np.float32))
        np.testing.assert_array_equal(qt.dequantize(), 0)

    def test_quantized_encoder_close_to_float(self, encoder, rng):
        imgs = random_complex_images(rng, 4, 16)
        zf = encoder.encode(imgs)
        qenc = QuantizedEncoder(encoder)
        zq = qenc.encode(imgs)
        rel = np.linalg.norm(zq - zf) / np.linalg.norm(zf)
        assert rel < 0.1  # int8 inference error envelope

    def test_quantized_weights_are_quarter_size(self, encoder):
        qenc = QuantizedEncoder(encoder)
        float_bytes = sum(
            int(np.prod(p.shape)) * 4
            for p in encoder.params()
            if p.value.ndim > 1  # weights only (biases stay float)
        )
        assert qenc.nbytes_weights * 4 == float_bytes

    def test_quantized_encoder_preserves_neighborhoods(self, encoder, rng):
        """Nearest-neighbor ordering must survive quantization (what the
        similarity search consumes)."""
        imgs = random_complex_images(rng, 8, 16)
        zf = encoder.encode(imgs)
        zq = QuantizedEncoder(encoder).encode(imgs)
        df = np.linalg.norm(zf - zf[0], axis=1)[1:]
        dq = np.linalg.norm(zq - zq[0], axis=1)[1:]
        assert np.corrcoef(df, dq)[0, 1] > 0.95
