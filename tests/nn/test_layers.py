"""Layer correctness: numerical gradient checks and reference convolutions."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal

from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential


def numerical_grad(f, x, eps=1e-4):
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        fp = f()
        flat[i] = old - eps
        fm = f()
        flat[i] = old
        gf[i] = (fp - fm) / (2 * eps)
    return g


class TestConv2D:
    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            Conv2D(1, 1, 4)

    def test_shape_same_padding(self, rng):
        conv = Conv2D(2, 5, 3, seed=0)
        out = conv.forward(rng.standard_normal((3, 2, 8, 8)).astype(np.float32))
        assert out.shape == (3, 5, 8, 8)

    def test_wrong_channels_rejected(self, rng):
        conv = Conv2D(2, 5, 3)
        with pytest.raises(ValueError):
            conv.forward(rng.standard_normal((1, 3, 8, 8)).astype(np.float32))

    def test_matches_scipy_correlate(self, rng):
        """im2col conv must equal scipy's 2-D cross-correlation."""
        conv = Conv2D(1, 1, 3, seed=1)
        x = rng.standard_normal((1, 1, 10, 10)).astype(np.float32)
        out = conv.forward(x)
        want = signal.correlate2d(
            x[0, 0], conv.weight.value[0, 0], mode="same", boundary="fill"
        ) + conv.bias.value[0]
        np.testing.assert_allclose(out[0, 0], want, rtol=1e-4, atol=1e-5)

    def test_weight_gradcheck(self, rng):
        conv = Conv2D(1, 2, 3, seed=2)
        x = rng.standard_normal((2, 1, 5, 5)).astype(np.float64)

        def loss():
            return float((conv.forward(x) ** 2).sum()) / 2

        num = numerical_grad(loss, conv.weight.value)
        conv.weight.grad[...] = 0
        out = conv.forward(x)
        conv.backward(out)
        np.testing.assert_allclose(conv.weight.grad, num, rtol=1e-3, atol=1e-4)

    def test_input_gradcheck(self, rng):
        conv = Conv2D(2, 3, 3, seed=3)
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float64)

        def loss():
            return float((conv.forward(x) ** 2).sum()) / 2

        num = numerical_grad(loss, x)
        out = conv.forward(x)
        gx = conv.backward(out)
        np.testing.assert_allclose(gx, num, rtol=1e-3, atol=1e-4)


class TestReLUPoolFlatten:
    def test_relu_zeroes_negatives(self, rng):
        r = ReLU()
        x = np.array([[-1.0, 2.0, -3.0, 4.0]], dtype=np.float32)
        np.testing.assert_array_equal(r.forward(x), [[0, 2, 0, 4]])
        np.testing.assert_array_equal(r.backward(np.ones_like(x)), [[0, 1, 0, 1]])

    def test_maxpool_shape_and_values(self):
        p = MaxPool2D()
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = p.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_odd_size_rejected(self, rng):
        with pytest.raises(ValueError):
            MaxPool2D().forward(rng.standard_normal((1, 1, 5, 4)).astype(np.float32))

    def test_maxpool_gradcheck(self, rng):
        p = MaxPool2D()
        # well-separated values avoid ties, making the gradient smooth
        x = rng.permutation(36).astype(np.float64).reshape(1, 1, 6, 6)

        def loss():
            return float((p.forward(x) ** 2).sum()) / 2

        num = numerical_grad(loss, x)
        out = p.forward(x)
        gx = p.backward(out)
        np.testing.assert_allclose(gx, num, rtol=1e-3, atol=1e-4)

    def test_flatten_roundtrip(self, rng):
        f = Flatten()
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        out = f.forward(x)
        assert out.shape == (2, 48)
        np.testing.assert_array_equal(f.backward(out), x)


class TestDense:
    def test_forward_affine(self, rng):
        d = Dense(4, 3, seed=0)
        x = rng.standard_normal((2, 4)).astype(np.float32)
        np.testing.assert_allclose(
            d.forward(x), x @ d.weight.value.T + d.bias.value, rtol=1e-6
        )

    def test_gradcheck(self, rng):
        d = Dense(5, 2, seed=1)
        x = rng.standard_normal((3, 5)).astype(np.float64)

        def loss():
            return float((d.forward(x) ** 2).sum()) / 2

        num_w = numerical_grad(loss, d.weight.value)
        d.weight.grad[...] = 0
        out = d.forward(x)
        gx = d.backward(out)
        np.testing.assert_allclose(d.weight.grad, num_w, rtol=1e-3, atol=1e-4)
        num_x = numerical_grad(loss, x)
        np.testing.assert_allclose(gx, num_x, rtol=1e-3, atol=1e-4)


class TestSequential:
    def test_params_collected(self):
        net = Sequential(Conv2D(1, 2, 3), ReLU(), Dense(8, 4))
        assert len(net.params()) == 4  # two weights + two biases

    def test_zero_grad(self, rng):
        net = Sequential(Dense(4, 4, seed=0))
        x = rng.standard_normal((2, 4)).astype(np.float32)
        net.backward(net.forward(x))
        assert np.abs(net.params()[0].grad).sum() > 0
        net.zero_grad()
        assert np.abs(net.params()[0].grad).sum() == 0

    def test_end_to_end_gradcheck(self, rng):
        net = Sequential(Conv2D(1, 2, 3, seed=0), ReLU(), MaxPool2D(), Flatten(), Dense(8, 3, seed=1))
        x = rng.standard_normal((1, 1, 4, 4)).astype(np.float64)

        def loss():
            return float((net.forward(x) ** 2).sum()) / 2

        num = numerical_grad(loss, x)
        out = net.forward(x)
        gx = net.backward(out)
        np.testing.assert_allclose(gx, num, rtol=2e-3, atol=1e-4)
