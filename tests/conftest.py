"""Shared fixtures: tiny geometries and prebuilt operator stacks.

Operator construction builds USFFT plans, so the expensive fixtures are
session-scoped; tests must not mutate them.
"""

from __future__ import annotations

from repro.analysis import lockwitness

# Opt-in runtime lock-order sanitizer (REPRO_LOCKWITNESS=1).  Installed
# before any repro module imports: a dataclass field declared as
# ``field(default_factory=threading.Lock)`` binds the factory at class
# *definition* time, so the patch must be in place first.
if lockwitness.enabled_from_env():
    lockwitness.install()

import numpy as np
import pytest

from repro.lamino import (
    LaminoGeometry,
    LaminoOperators,
    LaminoProjector,
    brain_like,
    simulate_data,
)


@pytest.fixture(scope="session")
def tiny_geometry() -> LaminoGeometry:
    return LaminoGeometry(
        vol_shape=(16, 16, 16), n_angles=12, det_shape=(16, 16), tilt_deg=61.0
    )


@pytest.fixture(scope="session")
def tiny_ops(tiny_geometry) -> LaminoOperators:
    return LaminoOperators(tiny_geometry)


@pytest.fixture(scope="session")
def tiny_projector(tiny_geometry) -> LaminoProjector:
    return LaminoProjector(tiny_geometry)


@pytest.fixture(scope="session")
def tiny_phantom(tiny_geometry) -> np.ndarray:
    return brain_like(tiny_geometry.vol_shape, seed=7)


@pytest.fixture(scope="session")
def tiny_data(tiny_geometry, tiny_phantom, tiny_projector) -> np.ndarray:
    return simulate_data(
        tiny_phantom, tiny_geometry, noise_level=0.01, seed=1, projector=tiny_projector
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
