"""DES kernel invariants: FIFO ordering, overlap, utilization accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Resource, Timeline


class TestResource:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource("r", capacity=0)

    def test_serial_occupation(self):
        r = Resource("gpu")
        assert r.occupy(0.0, 2.0) == 2.0
        assert r.occupy(0.0, 3.0) == 5.0  # queued behind the first
        assert r.busy_time == 5.0

    def test_multichannel(self):
        r = Resource("nic", capacity=2)
        assert r.occupy(0.0, 4.0) == 4.0
        assert r.occupy(0.0, 4.0) == 4.0  # second channel
        assert r.occupy(0.0, 1.0) == 5.0  # queued

    def test_gap_respected(self):
        r = Resource("gpu")
        r.occupy(0.0, 1.0)
        assert r.occupy(10.0, 1.0) == 11.0  # idle gap until release time

    def test_reset(self):
        r = Resource("gpu")
        r.occupy(0.0, 5.0)
        r.reset()
        assert r.earliest_free() == 0.0
        assert r.busy_time == 0.0


class TestTimeline:
    def test_negative_duration_rejected(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.add("t", None, -1.0)

    def test_dependency_chain(self):
        tl = Timeline()
        gpu = tl.resource("gpu")
        a = tl.add("a", gpu, 1.0)
        b = tl.add("b", gpu, 1.0, deps=[a])
        assert b.start == 1.0 and b.end == 2.0

    def test_pipeline_overlap(self):
        """Transfer/compute on distinct engines overlap across chunks —
        the Figure 1 pipeline."""
        tl = Timeline()
        pcie = tl.resource("pcie")
        gpu = tl.resource("gpu")
        total_serial = 0.0
        prev_compute = None
        for c in range(4):
            t = tl.add(f"h2d{c}", pcie, 1.0)
            k = tl.add(f"fft{c}", gpu, 2.0, deps=[t])
            prev_compute = k
            total_serial += 3.0
        assert prev_compute.end < total_serial  # overlap happened
        assert prev_compute.end == pytest.approx(1.0 + 4 * 2.0)

    def test_resource_none_is_pure_dependency(self):
        tl = Timeline()
        a = tl.add("a", None, 5.0)
        b = tl.add("b", None, 1.0, deps=[a])
        assert b.start == 5.0

    def test_release_time(self):
        tl = Timeline()
        gpu = tl.resource("gpu")
        t = tl.add("late", gpu, 1.0, release=7.0)
        assert t.start == 7.0
        assert t.latency == pytest.approx(1.0)

    def test_latency_includes_queueing(self):
        tl = Timeline()
        nic = tl.resource("nic")
        tl.add("q0", nic, 2.0, release=0.0)
        t = tl.add("q1", nic, 2.0, release=0.0)
        assert t.latency == pytest.approx(4.0)

    def test_makespan_and_utilization(self):
        tl = Timeline()
        gpu = tl.resource("gpu")
        tl.add("a", gpu, 2.0)
        tl.add("b", gpu, 2.0)
        assert tl.makespan == 4.0
        assert tl.utilization(gpu) == pytest.approx(1.0)
        idle = tl.resource("idle")
        assert tl.utilization(idle) == 0.0

    def test_latencies_by_prefix(self):
        tl = Timeline()
        r = tl.resource("r")
        tl.add("query/1", r, 1.0)
        tl.add("query/2", r, 1.0)
        tl.add("other", r, 1.0)
        assert len(tl.latencies("query/")) == 2

    def test_busy_between_window(self):
        tl = Timeline()
        gpu = tl.resource("gpu")
        tl.add("a", gpu, 4.0)  # [0, 4)
        assert tl.busy_between(gpu, 1.0, 3.0) == pytest.approx(2.0)
        assert tl.busy_between(gpu, 5.0, 9.0) == 0.0


class TestSchedulingProperties:
    @given(
        durations=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=20),
        capacity=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_conservation_of_work(self, durations, capacity):
        """Sum of busy time equals the sum of durations; makespan is bounded
        below by work/capacity and above by total serial work."""
        tl = Timeline()
        r = tl.resource("r", capacity=capacity)
        for i, d in enumerate(durations):
            tl.add(f"t{i}", r, d)
        total = sum(durations)
        assert r.busy_time == pytest.approx(total)
        assert tl.makespan >= total / capacity - 1e-9
        assert tl.makespan <= total + 1e-9

    @given(durations=st.lists(st.floats(0.01, 5.0), min_size=2, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_no_overlapping_tasks_on_serial_resource(self, durations):
        tl = Timeline()
        r = tl.resource("r")
        tasks = [tl.add(f"t{i}", r, d) for i, d in enumerate(durations)]
        spans = sorted((t.start, t.end) for t in tasks)
        for (_s0, e0), (s1, _e1) in zip(spans, spans[1:]):
            assert s1 >= e0 - 1e-9
