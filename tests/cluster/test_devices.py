"""Device specs, link math, topology resource wiring, cost-model sanity."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterModel,
    CostModel,
    LinkSpec,
    ProblemDims,
    SSDSpec,
    Timeline,
)


class TestLinkSpec:
    def test_transfer_time_components(self):
        link = LinkSpec("l", bandwidth_gbs=10.0, latency_us=100.0)
        t = link.transfer_time(10e9)
        assert t == pytest.approx(100e-6 + 1.0)

    def test_zero_bytes_costs_latency_only(self):
        link = LinkSpec("l", bandwidth_gbs=10.0, latency_us=7.0)
        assert link.transfer_time(0) == pytest.approx(7e-6)

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            LinkSpec("l", bandwidth_gbs=0, latency_us=1)
        with pytest.raises(ValueError):
            LinkSpec("l", bandwidth_gbs=1, latency_us=-1)

    def test_ssd_read_faster_than_write(self):
        ssd = SSDSpec()
        nbytes = 1e9
        assert ssd.read_time(nbytes) < ssd.write_time(nbytes)


class TestClusterModel:
    def test_gpu_count_and_node_mapping(self):
        cm = ClusterModel(Timeline(), n_gpus=6)
        assert len(cm.gpus) == 6
        assert cm.n_nodes == 2  # 4 GPUs per Polaris node
        assert cm.gpus[3].node == 0 and cm.gpus[4].node == 1

    def test_single_gpu(self):
        cm = ClusterModel(Timeline(), n_gpus=1)
        assert cm.n_nodes == 1
        assert cm.memory_nic is not None

    def test_invalid_gpus(self):
        with pytest.raises(ValueError):
            ClusterModel(Timeline(), n_gpus=0)

    def test_memory_node_optional(self):
        cm = ClusterModel(Timeline(), n_gpus=1, with_memory_node=False)
        assert cm.memory_nic is None

    def test_cross_node_detection(self):
        cm = ClusterModel(Timeline(), n_gpus=8)
        assert not cm.crosses_node(cm.gpus[0], cm.gpus[3])
        assert cm.crosses_node(cm.gpus[0], cm.gpus[4])

    def test_resources_are_shared_within_node(self):
        tl = Timeline()
        cm = ClusterModel(tl, n_gpus=2)
        assert cm.nic_of(cm.gpus[0]) is cm.nic_of(cm.gpus[1])
        assert cm.gpus[0].compute is not cm.gpus[1].compute


class TestProblemDims:
    def test_chunk_accounting(self):
        dims = ProblemDims(n=1024, n_chunks=64)
        assert dims.chunk_slices == 16
        assert dims.chunk_elems == 16 * 1024 * 1024
        assert dims.chunk_bytes == 8 * dims.chunk_elems

    def test_validation(self):
        with pytest.raises(ValueError):
            ProblemDims(n=1)
        with pytest.raises(ValueError):
            ProblemDims(n=64, n_chunks=128)


class TestCostModel:
    def setup_method(self):
        self.cm = CostModel()
        self.dims = ProblemDims(n=1024, n_chunks=64)

    def test_fu2d_is_longest_op(self):
        """Sec. 4.3.2: F_u2D is the longest FFT operation for a chunk."""
        times = {op: self.cm.fft_time(op, self.dims) for op in self.cm.op_weight}
        assert max(times, key=times.get) == "Fu2D*"
        assert times["Fu2D"] > times["Fu1D"] > times["F2D"]

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            self.cm.fft_time("Fu3D", self.dims)

    def test_index_query_anchor(self):
        """~0.2 ms for 1M keys at dim 60 (paper Sec. 4.3.2)."""
        t = self.cm.index_query_time(n_keys=1_000_000)
        assert t == pytest.approx(0.2e-3, rel=0.1)

    def test_index_query_batched_sublinear(self):
        t1 = self.cm.index_query_time(1_000_000, batch=1)
        t16 = self.cm.index_query_time(1_000_000, batch=16)
        assert t16 < 16 * t1
        assert t16 > t1

    def test_query_much_cheaper_than_fu2d(self):
        """The paper's 100x comparison between index query and F_u2D."""
        q = self.cm.index_query_time(1_000_000)
        f = self.cm.fft_time("Fu2D", self.dims)
        assert f / q > 50

    def test_encode_time_small(self):
        """Key encoding must be a tiny fraction of the FFT op it guards."""
        assert self.cm.encode_time(self.dims) < 0.1 * self.cm.fft_time("Fu1D", self.dims)

    def test_cpu_subtract_slower_than_gpu_fft_share(self):
        """The un-fused CPU subtraction is expensive enough to matter
        (Sec. 4.2 reports it negates cancellation gains on 1K^3)."""
        sub = self.cm.cpu_subtract_time(self.dims)
        assert sub > 0.25 * self.cm.fft_time("Fu1D", self.dims)

    def test_coalescing_packs_multiple_keys(self):
        assert self.cm.keys_per_coalesced_message() >= 10

    def test_transfer_times_positive(self):
        assert self.cm.h2d_time(self.dims) > 0
        assert self.cm.net_time(4096) > 0
        assert self.cm.ssd_write_time(1e9) > self.cm.nvlink_time(1e9)
