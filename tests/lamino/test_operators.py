"""Operator-stack invariants: adjointness, unitarity, cancellation, chunking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lamino import LaminoGeometry, LaminoOperators


def _rand_complex(rng, shape, dtype=np.complex128):
    return (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(dtype)


@pytest.fixture(scope="module")
def ops():
    g = LaminoGeometry((16, 16, 16), n_angles=12, det_shape=(16, 16), tilt_deg=61.0)
    return LaminoOperators(g)


class TestShapes:
    def test_fu1d_shapes(self, ops, rng):
        u = _rand_complex(rng, ops.geometry.vol_shape)
        u1 = ops.fu1d(u)
        assert u1.shape == (16, 16, 16)
        assert ops.fu1d_adj(u1).shape == ops.geometry.vol_shape

    def test_fu2d_shapes(self, ops, rng):
        u1 = _rand_complex(rng, (16, 16, 16))
        u2 = ops.fu2d(u1)
        assert u2.shape == ops.geometry.data_shape
        assert ops.fu2d_adj(u2).shape == (16, 16, 16)

    def test_forward_adjoint_shapes(self, ops, rng):
        u = _rand_complex(rng, ops.geometry.vol_shape)
        d = ops.forward(u)
        assert d.shape == ops.geometry.data_shape
        assert ops.adjoint(d).shape == ops.geometry.vol_shape


class TestAdjointness:
    def test_fu1d_pair(self, ops, rng):
        u = _rand_complex(rng, ops.geometry.vol_shape)
        y = _rand_complex(rng, (16, 16, 16))
        lhs = np.vdot(y, ops.fu1d(u))
        rhs = np.vdot(ops.fu1d_adj(y), u)
        assert abs(lhs - rhs) < 1e-9 * abs(lhs)

    def test_fu2d_pair(self, ops, rng):
        x = _rand_complex(rng, (16, 16, 16))
        y = _rand_complex(rng, ops.geometry.data_shape)
        lhs = np.vdot(y, ops.fu2d(x))
        rhs = np.vdot(ops.fu2d_adj(y), x)
        assert abs(lhs - rhs) < 1e-9 * abs(lhs)

    def test_f2d_pair(self, ops, rng):
        x = _rand_complex(rng, ops.geometry.data_shape)
        y = _rand_complex(rng, ops.geometry.data_shape)
        lhs = np.vdot(y, ops.f2d(x))
        rhs = np.vdot(ops.f2d_adj(y), x)
        assert abs(lhs - rhs) < 1e-10 * abs(lhs)

    def test_full_operator_pair(self, ops, rng):
        u = _rand_complex(rng, ops.geometry.vol_shape)
        d = _rand_complex(rng, ops.geometry.data_shape)
        lhs = np.vdot(d, ops.forward(u))
        rhs = np.vdot(ops.adjoint(d), u)
        assert abs(lhs - rhs) < 1e-9 * abs(lhs)


class TestUnitarityAndCancellation:
    def test_f2d_roundtrip_is_identity(self, ops, rng):
        """The identity F2D F2D* = I that justifies operation cancellation."""
        d = _rand_complex(rng, ops.geometry.data_shape)
        np.testing.assert_allclose(ops.f2d(ops.f2d_adj(d)), d, atol=1e-12)
        np.testing.assert_allclose(ops.f2d_adj(ops.f2d(d)), d, atol=1e-12)

    def test_f2d_preserves_norm(self, ops, rng):
        d = _rand_complex(rng, ops.geometry.data_shape)
        assert np.isclose(np.linalg.norm(ops.f2d(d)), np.linalg.norm(d))

    def test_cancelled_pipeline_equals_original(self, ops, rng):
        """forward == F2D* (forward_freq): the Algorithm 1 vs 2 equivalence."""
        u = _rand_complex(rng, ops.geometry.vol_shape)
        np.testing.assert_allclose(
            ops.forward(u), ops.f2d_adj(ops.forward_freq(u)), atol=1e-10
        )

    def test_cancelled_adjoint_equals_original(self, ops, rng):
        d = _rand_complex(rng, ops.geometry.data_shape)
        np.testing.assert_allclose(
            ops.adjoint(d), ops.adjoint_freq(ops.f2d(d)), atol=1e-10
        )


class TestChunking:
    def test_fu1d_chunks_along_x(self, ops, rng):
        u = _rand_complex(rng, ops.geometry.vol_shape)
        full = ops.fu1d(u)
        part = np.concatenate([ops.fu1d(u[:8]), ops.fu1d(u[8:])], axis=0)
        np.testing.assert_array_equal(full, part)

    def test_fu2d_chunks_along_h(self, ops, rng):
        u1 = _rand_complex(rng, (16, 16, 16))
        full = ops.fu2d(u1)
        part = np.concatenate(
            [
                ops.fu2d(u1[:, 0:4, :], rows=slice(0, 4)),
                ops.fu2d(u1[:, 4:16, :], rows=slice(4, 16)),
            ],
            axis=1,
        )
        np.testing.assert_array_equal(full, part)

    def test_fu2d_adj_chunks_along_h(self, ops, rng):
        r = _rand_complex(rng, ops.geometry.data_shape)
        full = ops.fu2d_adj(r)
        part = np.concatenate(
            [
                ops.fu2d_adj(r[:, 0:10, :], rows=slice(0, 10)),
                ops.fu2d_adj(r[:, 10:16, :], rows=slice(10, 16)),
            ],
            axis=1,
        )
        np.testing.assert_array_equal(full, part)


class TestPhysicalSanity:
    def test_real_volume_projects_to_nearly_real_data(self, ops):
        # The sampled detector spectrum of a real volume is Hermitian up to
        # the Nyquist row/column asymmetry of even grids, so the imaginary
        # residue is small relative to the real part (but not zero).
        from repro.lamino import brain_like

        u = brain_like(ops.geometry.vol_shape, seed=4)
        d = ops.forward(u)
        assert np.linalg.norm(d.imag) < 0.05 * np.linalg.norm(d.real)

    def test_zero_volume_projects_to_zero(self, ops):
        d = ops.forward(np.zeros(ops.geometry.vol_shape, dtype=np.complex64))
        assert np.allclose(d, 0)

    def test_gram_operator_is_psd(self, ops, rng):
        u = _rand_complex(rng, ops.geometry.vol_shape)
        quad = np.vdot(u, ops.adjoint_freq(ops.forward_freq(u))).real
        assert quad >= 0
