"""Phantom generators: determinism, value range, slab support."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lamino import brain_like, ic_layers, make_phantom, pcb, slab_envelope

SHAPE = (24, 24, 24)


@pytest.mark.parametrize("fn", [ic_layers, brain_like, pcb])
class TestCommonProperties:
    def test_shape_and_dtype(self, fn):
        v = fn(SHAPE, seed=1)
        assert v.shape == SHAPE
        assert v.dtype == np.float32

    def test_value_range(self, fn):
        v = fn(SHAPE, seed=1)
        assert v.min() >= 0.0
        assert v.max() <= 1.0
        assert v.max() > 0.1  # non-trivial content

    def test_deterministic(self, fn):
        np.testing.assert_array_equal(fn(SHAPE, seed=5), fn(SHAPE, seed=5))

    def test_seed_changes_content(self, fn):
        assert not np.array_equal(fn(SHAPE, seed=1), fn(SHAPE, seed=2))

    def test_flat_slab_support(self, fn):
        """Laminography targets are thin: top/bottom z-slices must be empty."""
        v = fn(SHAPE, seed=3)
        assert np.abs(v[:, :2, :]).max() < 1e-3
        assert np.abs(v[:, -2:, :]).max() < 1e-3


class TestSlabEnvelope:
    def test_center_is_one_edges_zero(self):
        env = slab_envelope(SHAPE, thickness=0.5)
        assert env[:, SHAPE[1] // 2, :].min() > 0.9
        assert env[:, 0, :].max() < 0.05

    def test_thickness_controls_support(self):
        thin = slab_envelope(SHAPE, thickness=0.2)
        thick = slab_envelope(SHAPE, thickness=0.8)
        assert thin.sum() < thick.sum()


class TestRegistry:
    @pytest.mark.parametrize("kind", ["ic", "brain", "pcb"])
    def test_make_phantom_dispatch(self, kind):
        v = make_phantom(kind, SHAPE, seed=0)
        assert v.shape == SHAPE

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown phantom"):
            make_phantom("nope", SHAPE)
