"""Projector validation: Fourier model vs brute-force ray tracing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lamino import (
    LaminoGeometry,
    LaminoProjector,
    brain_like,
    project_direct,
    simulate_data,
)


class TestLaminoProjector:
    def test_forward_shape_validation(self, tiny_projector, rng):
        with pytest.raises(ValueError):
            tiny_projector.forward(np.zeros((8, 8, 8)))

    def test_adjoint_shape_validation(self, tiny_projector):
        with pytest.raises(ValueError):
            tiny_projector.adjoint(np.zeros((3, 3, 3)))

    def test_normal_is_psd(self, tiny_projector, rng):
        u = rng.standard_normal(tiny_projector.geometry.vol_shape).astype(np.complex64)
        v = tiny_projector.normal(u)
        assert np.vdot(u, v).real >= -1e-3 * np.linalg.norm(u) ** 2


class TestFourierVsDirect:
    @pytest.mark.parametrize("tilt", [61.0, 90.0])
    def test_proportional_to_ray_traced(self, tilt):
        """Both projectors implement the same physics up to a known global
        scale (sqrt(h*w/n^3) = 1/sqrt(n) for cubic volumes) and discretization
        error that shrinks with resolution."""
        n = 16
        g = LaminoGeometry((n, n, n), n_angles=12, det_shape=(n, n), tilt_deg=tilt)
        ph = brain_like((n, n, n), seed=2)
        df = LaminoProjector(g).forward(ph).real
        dd = project_direct(ph, g, supersample=4)
        scale = float(np.vdot(dd.ravel(), df.ravel()).real) / float(
            np.vdot(dd.ravel(), dd.ravel()).real
        )
        assert scale == pytest.approx(1.0 / np.sqrt(n), rel=0.08)
        resid = np.linalg.norm(df - scale * dd) / np.linalg.norm(df)
        assert resid < 0.15

    def test_direct_projector_mass_conservation(self):
        """Parallel-beam projection preserves total mass: summing a
        projection over the detector approximates the volume integral
        (trilinear hats form a partition of unity across the ray bundle)."""
        n = 16
        g = LaminoGeometry((n, n, n), n_angles=6, det_shape=(n, n), tilt_deg=55.0)
        u = brain_like((n, n, n), seed=5).astype(np.float64)
        # Restrict support to the inscribed cylinder so no ray exits past the
        # detector edge (corner voxels would otherwise be clipped at p>w/2).
        x = np.arange(n) - n // 2
        r2 = x[:, None] ** 2 + x[None, :] ** 2
        u *= (r2 < (0.4 * n) ** 2)[:, None, :]
        d = project_direct(u, g, supersample=4)
        sums = d.sum(axis=(1, 2))
        np.testing.assert_allclose(sums, u.sum(), rtol=0.05)


class TestSimulateData:
    def test_real_output(self, tiny_geometry, tiny_phantom, tiny_projector):
        d = simulate_data(tiny_phantom, tiny_geometry, projector=tiny_projector)
        assert d.dtype == np.float32
        assert d.shape == tiny_geometry.data_shape

    def test_noise_level_scales(self, tiny_geometry, tiny_phantom, tiny_projector):
        clean = simulate_data(tiny_phantom, tiny_geometry, projector=tiny_projector)
        noisy = simulate_data(
            tiny_phantom, tiny_geometry, noise_level=0.1, seed=3, projector=tiny_projector
        )
        noise = noisy - clean
        assert 0.05 < np.sqrt(np.mean(noise**2)) / np.sqrt(np.mean(clean**2)) < 0.2

    def test_noise_deterministic_by_seed(self, tiny_geometry, tiny_phantom, tiny_projector):
        a = simulate_data(tiny_phantom, tiny_geometry, 0.05, seed=9, projector=tiny_projector)
        b = simulate_data(tiny_phantom, tiny_geometry, 0.05, seed=9, projector=tiny_projector)
        np.testing.assert_array_equal(a, b)
