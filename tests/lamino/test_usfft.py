"""USFFT correctness: direct-DFT equivalence, exact adjointness, linearity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lamino import usfft as U


def _rand_complex(rng, shape):
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestKernelParams:
    def test_tau_positive_and_monotone_in_half_width(self):
        taus = [U._kernel_tau(k, 2) for k in (1, 3, 5, 9)]
        assert all(t > 0 for t in taus)
        assert taus == sorted(taus)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_half_width_rejected(self, bad):
        with pytest.raises(ValueError):
            U._kernel_tau(bad, 2)

    def test_invalid_oversample_rejected(self):
        with pytest.raises(ValueError):
            U._kernel_tau(4, 1)


class TestPlan1D:
    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            U.USFFT1DPlan(15, np.arange(4.0))

    def test_interp_shape(self):
        plan = U.USFFT1DPlan(16, np.linspace(-7, 7, 9))
        assert plan.interp.shape == (9, 32)
        assert plan.ns == 9

    def test_interp_rows_have_bounded_support(self):
        plan = U.USFFT1DPlan(16, np.array([0.3]), half_width=4)
        nnz = np.count_nonzero(plan.interp[0] > 1e-300)
        assert nnz <= 2 * 4 + 1


class TestType2Accuracy1D:
    @pytest.mark.parametrize("half_width,tol", [(4, 3e-4), (5, 3e-5), (7, 1e-6)])
    def test_matches_direct_dtft(self, rng, half_width, tol):
        n = 32
        f = _rand_complex(rng, (2, n))
        s = rng.uniform(-n / 2, n / 2, size=23)
        plan = U.USFFT1DPlan(n, s, half_width=half_width)
        got = U.usfft1d_type2(f, plan, axis=-1)
        want = U.dtft1d_direct(f, s, axis=-1)
        assert np.linalg.norm(got - want) / np.linalg.norm(want) < tol

    def test_integer_freqs_recover_ortho_dft(self, rng):
        n = 32
        f = _rand_complex(rng, (n,))
        s = (np.arange(n) - n // 2).astype(float)
        plan = U.USFFT1DPlan(n, s, half_width=7)
        got = U.usfft1d_type2(f, plan)
        # the ortho DFT is the oracle this test compares against
        # analysis: ignore[direct-fft]
        want = np.fft.fftshift(np.fft.fft(np.fft.ifftshift(f), norm="ortho"))
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-6 * np.abs(want).max())

    def test_periodic_frequency_wraparound(self, rng):
        # Frequencies n apart sample the same DTFT value (period n).
        n = 16
        f = _rand_complex(rng, (n,))
        plan = U.USFFT1DPlan(n, np.array([3.3, 3.3 - n]), half_width=7)
        got = U.usfft1d_type2(f, plan)
        np.testing.assert_allclose(got[0], got[1], rtol=1e-5)

    def test_applies_along_middle_axis(self, rng):
        n = 16
        f = _rand_complex(rng, (3, n, 5))
        s = rng.uniform(-n / 2, n / 2, size=9)
        plan = U.USFFT1DPlan(n, s)
        got = U.usfft1d_type2(f, plan, axis=1)
        assert got.shape == (3, 9, 5)
        want = U.dtft1d_direct(f, s, axis=1)
        assert np.linalg.norm(got - want) / np.linalg.norm(want) < 1e-4

    def test_wrong_axis_length_raises(self, rng):
        plan = U.USFFT1DPlan(16, np.arange(4.0))
        with pytest.raises(ValueError):
            U.usfft1d_type2(np.zeros((3, 8)), plan, axis=-1)

    def test_linearity(self, rng):
        n = 16
        plan = U.USFFT1DPlan(n, rng.uniform(-8, 8, size=6))
        a = _rand_complex(rng, (n,))
        b = _rand_complex(rng, (n,))
        lhs = U.usfft1d_type2(2.0 * a + 3j * b, plan)
        rhs = 2.0 * U.usfft1d_type2(a, plan) + 3j * U.usfft1d_type2(b, plan)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10)

    def test_float32_input_gives_complex64(self, rng):
        plan = U.USFFT1DPlan(16, np.arange(4.0))
        out = U.usfft1d_type2(rng.standard_normal(16).astype(np.float32), plan)
        assert out.dtype == np.complex64


class TestAdjoint1D:
    @given(seed=st.integers(0, 2**31 - 1), ns=st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_dot_product_identity(self, seed, ns):
        rng = np.random.default_rng(seed)
        n = 16
        s = rng.uniform(-n, n, size=ns)  # including out-of-band frequencies
        plan = U.USFFT1DPlan(n, s, half_width=4)
        x = _rand_complex(rng, (n,))
        y = _rand_complex(rng, (ns,))
        lhs = np.vdot(y, U.usfft1d_type2(x, plan))
        rhs = np.vdot(U.usfft1d_type1(y, plan), x)
        assert abs(lhs - rhs) <= 1e-10 * max(abs(lhs), 1.0)

    def test_wrong_ns_raises(self):
        plan = U.USFFT1DPlan(16, np.arange(4.0))
        with pytest.raises(ValueError):
            U.usfft1d_type1(np.zeros(5, dtype=complex), plan)

    def test_adjoint_matches_direct_adjoint(self, rng):
        n = 16
        s = rng.uniform(-n / 2, n / 2, size=11)
        plan = U.USFFT1DPlan(n, s, half_width=7)
        y = _rand_complex(rng, (11,))
        got = U.usfft1d_type1(y, plan)
        # direct adjoint: conj-transpose of the direct DTFT matrix
        x = np.arange(n) - n // 2
        A = np.exp(-2j * np.pi * np.outer(s, x) / n) / np.sqrt(n)
        want = A.conj().T @ y
        assert np.linalg.norm(got - want) / np.linalg.norm(want) < 1e-6


class TestPlan2D:
    def test_bad_points_shape_rejected(self):
        with pytest.raises(ValueError):
            U.USFFT2DPlan((8, 8), np.zeros((4, 10)))

    def test_odd_shape_rejected(self):
        with pytest.raises(ValueError):
            U.USFFT2DPlan((7, 8), np.zeros((1, 3, 2)))

    def test_interp_matrices_per_slice(self):
        pts = np.zeros((3, 5, 2))
        plan = U.USFFT2DPlan((8, 8), pts, half_width=3)
        assert len(plan.interp) == 3
        assert plan.interp[0].shape == (5, 16 * 16)
        assert plan.nslices == 3 and plan.npts == 5


class TestType2Accuracy2D:
    @pytest.mark.parametrize("half_width,tol", [(4, 5e-4), (7, 1e-6)])
    def test_matches_direct_dtft(self, rng, half_width, tol):
        n0, n1 = 12, 16
        nsl, npts = 3, 40
        f = _rand_complex(rng, (nsl, n0, n1))
        pts = np.stack(
            [
                rng.uniform(-n0 / 2, n0 / 2, size=(nsl, npts)),
                rng.uniform(-n1 / 2, n1 / 2, size=(nsl, npts)),
            ],
            axis=-1,
        )
        plan = U.USFFT2DPlan((n0, n1), pts, half_width=half_width)
        got = U.usfft2d_type2(f, plan)
        want = U.dtft2d_direct(f, pts)
        assert np.linalg.norm(got - want) / np.linalg.norm(want) < tol

    def test_chunked_equals_full(self, rng):
        n0 = n1 = 8
        nsl, npts = 6, 20
        f = _rand_complex(rng, (nsl, n0, n1))
        pts = rng.uniform(-4, 4, size=(nsl, npts, 2))
        plan = U.USFFT2DPlan((n0, n1), pts)
        full = U.usfft2d_type2(f, plan)
        part = np.concatenate(
            [
                U.usfft2d_type2(f[0:2], plan, slices=slice(0, 2)),
                U.usfft2d_type2(f[2:6], plan, slices=slice(2, 6)),
            ]
        )
        np.testing.assert_array_equal(full, part)

    def test_wrong_shape_raises(self, rng):
        plan = U.USFFT2DPlan((8, 8), np.zeros((2, 3, 2)))
        with pytest.raises(ValueError):
            U.usfft2d_type2(np.zeros((2, 8, 10), dtype=complex), plan)

    def test_strided_slice_selection_rejected(self, rng):
        plan = U.USFFT2DPlan((8, 8), np.zeros((4, 3, 2)))
        with pytest.raises(ValueError):
            U.usfft2d_type2(np.zeros((2, 8, 8), dtype=complex), plan, slices=slice(0, 4, 2))


class TestAdjoint2D:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_dot_product_identity(self, seed):
        rng = np.random.default_rng(seed)
        n0 = n1 = 8
        nsl, npts = 2, 17
        pts = rng.uniform(-8, 8, size=(nsl, npts, 2))
        plan = U.USFFT2DPlan((n0, n1), pts, half_width=3)
        x = _rand_complex(rng, (nsl, n0, n1))
        y = _rand_complex(rng, (nsl, npts))
        lhs = np.vdot(y, U.usfft2d_type2(x, plan))
        rhs = np.vdot(U.usfft2d_type1(y, plan), x)
        assert abs(lhs - rhs) <= 1e-10 * max(abs(lhs), 1.0)

    def test_shape_validation(self):
        plan = U.USFFT2DPlan((8, 8), np.zeros((2, 3, 2)))
        with pytest.raises(ValueError):
            U.usfft2d_type1(np.zeros((2, 5), dtype=complex), plan)

    def test_dtype_complex64_path(self, rng):
        plan = U.USFFT2DPlan((8, 8), rng.uniform(-4, 4, (2, 5, 2)))
        y = _rand_complex(rng, (2, 5)).astype(np.complex64)
        out = U.usfft2d_type1(y, plan)
        assert out.dtype == np.complex64
