"""Hot-path execution discipline of the USFFT kernels.

Covers the vectorization pass: complex64 preservation end to end (no hidden
complex128 temporaries at the FFT boundary), cached dtype variants on the
plans, fast-vs-reference kernel agreement, the adjoint dot-product identity
under the scipy FFT backend, and the FFT configuration surface itself.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lamino import LaminoGeometry, LaminoOperators
from repro.lamino import usfft as U


def _rand_c64(rng, shape):
    return (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(
        np.complex64
    )


@pytest.fixture()
def plan1d(rng):
    return U.USFFT1DPlan(16, rng.uniform(-8, 8, size=11))


@pytest.fixture()
def plan2d(rng):
    return U.USFFT2DPlan((8, 12), rng.uniform(-4, 4, size=(5, 17, 2)))


class TestConfig:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            U.configure_fft(backend="fftw")

    def test_configure_returns_previous_and_context_restores(self):
        before = U.fft_config()
        with U.fft_backend(backend="numpy", workers=2, reference=True):
            assert U.fft_config() == {"backend": "numpy", "workers": 2, "reference": True}
        assert U.fft_config() == before

    def test_reference_kernels_context(self):
        before = U.fft_config()
        with U.reference_kernels():
            cfg = U.fft_config()
            assert cfg["backend"] == "numpy" and cfg["reference"]
        assert U.fft_config() == before


class TestDtypePreservation:
    """complex64 in -> complex64 out, with complex64 *internals*."""

    def test_usfft1d_roundtrip_dtypes(self, plan1d, rng):
        f = _rand_c64(rng, (3, 16))
        F = U.usfft1d_type2(f, plan1d)
        assert F.dtype == np.complex64
        assert U.usfft1d_type1(F, plan1d).dtype == np.complex64

    def test_usfft2d_roundtrip_dtypes(self, plan2d, rng):
        f = _rand_c64(rng, (5, 8, 12))
        F = U.usfft2d_type2(f, plan2d)
        assert F.dtype == np.complex64
        assert U.usfft2d_type1(F, plan2d).dtype == np.complex64

    def test_complex128_still_complex128(self, plan1d, plan2d, rng):
        f = (rng.standard_normal((2, 16)) + 1j * rng.standard_normal((2, 16)))
        assert U.usfft1d_type2(f, plan1d).dtype == np.complex128
        g = rng.standard_normal((5, 8, 12)) + 1j * rng.standard_normal((5, 8, 12))
        assert U.usfft2d_type2(g, plan2d).dtype == np.complex128

    def test_no_complex128_fft_temporaries(self, plan1d, plan2d, rng, monkeypatch):
        """Every FFT-boundary array of a complex64 call must be complex64."""
        seen: list[np.dtype] = []
        orig_fwd, orig_adj = U._fftn_raw, U._ifftn_raw

        def spy_fwd(a, axes, overwrite=False):
            seen.append(a.dtype)
            out = orig_fwd(a, axes, overwrite)
            seen.append(out.dtype)
            return out

        def spy_adj(a, axes, overwrite=False):
            seen.append(a.dtype)
            out = orig_adj(a, axes, overwrite)
            seen.append(out.dtype)
            return out

        monkeypatch.setattr(U, "_fftn_raw", spy_fwd)
        monkeypatch.setattr(U, "_ifftn_raw", spy_adj)
        F1 = U.usfft1d_type2(_rand_c64(rng, (2, 16)), plan1d)
        U.usfft1d_type1(F1, plan1d)
        F2 = U.usfft2d_type2(_rand_c64(rng, (5, 8, 12)), plan2d)
        U.usfft2d_type1(F2, plan2d)
        assert seen and all(dt == np.complex64 for dt in seen)

    def test_cached_casts_are_compute_dtype(self, plan1d, plan2d):
        assert plan1d.corr_for(np.float32).dtype == np.float32
        assert plan1d.interp_for(np.complex64).dtype == np.complex64
        assert plan1d.interp_for(np.complex64, transpose=True).shape == (
            plan1d.fine_n,
            plan1d.ns,
        )
        g = plan2d.block_gather(0, plan2d.nslices, np.complex64)
        s = plan2d.block_scatter(1, 4, np.complex64)
        assert g.dtype == np.complex64 and s.dtype == np.complex64
        assert s.format == "csr"  # pre-transposed, not a lazy CSC view

    def test_cast_caches_are_reused(self, plan1d, plan2d):
        assert plan1d.corr_for(np.float32) is plan1d.corr_for(np.float32)
        assert plan1d.interp_for(np.complex64) is plan1d.interp_for(np.complex64)
        assert plan2d.block_gather(0, 2, np.complex64) is plan2d.block_gather(
            0, 2, np.complex64
        )

    def test_operators_preserve_complex64(self, rng):
        g = LaminoGeometry((8, 8, 8), n_angles=6, det_shape=(8, 8), tilt_deg=61.0)
        ops = LaminoOperators(g)
        u = _rand_c64(rng, g.vol_shape)
        d = _rand_c64(rng, g.data_shape)
        assert ops.fu1d(u).dtype == np.complex64
        assert ops.fu1d_adj(u).dtype == np.complex64
        assert ops.fu2d(u).dtype == np.complex64
        assert ops.fu2d_adj(d).dtype == np.complex64
        assert ops.f2d(d).dtype == np.complex64
        assert ops.f2d_adj(d).dtype == np.complex64
        assert ops.forward(u).dtype == np.complex64
        assert ops.adjoint(d).dtype == np.complex64


class TestFastVsReference:
    """The vectorized kernels agree with the pre-vectorization baseline."""

    def test_usfft1d_matches_reference(self, plan1d, rng):
        f = _rand_c64(rng, (4, 16))
        fast2 = U.usfft1d_type2(f, plan1d)
        with U.reference_kernels():
            ref2 = U.usfft1d_type2(f, plan1d)
        np.testing.assert_allclose(fast2, ref2, rtol=2e-5, atol=2e-5)
        fast1 = U.usfft1d_type1(fast2, plan1d)
        with U.reference_kernels():
            ref1 = U.usfft1d_type1(ref2, plan1d)
        np.testing.assert_allclose(fast1, ref1, rtol=2e-4, atol=2e-4)

    def test_usfft2d_matches_reference(self, plan2d, rng):
        f = _rand_c64(rng, (5, 8, 12))
        fast2 = U.usfft2d_type2(f, plan2d)
        with U.reference_kernels():
            ref2 = U.usfft2d_type2(f, plan2d)
        np.testing.assert_allclose(fast2, ref2, rtol=2e-4, atol=2e-4)
        fast1 = U.usfft2d_type1(fast2, plan2d)
        with U.reference_kernels():
            ref1 = U.usfft2d_type1(ref2, plan2d)
        np.testing.assert_allclose(fast1, ref1, rtol=2e-4, atol=2e-4)

    def test_usfft2d_chunked_matches_reference(self, plan2d, rng):
        f = _rand_c64(rng, (3, 8, 12))
        fast = U.usfft2d_type2(f, plan2d, slices=slice(1, 4))
        with U.reference_kernels():
            ref = U.usfft2d_type2(f, plan2d, slices=slice(1, 4))
        np.testing.assert_allclose(fast, ref, rtol=2e-4, atol=2e-4)

    def test_float64_matches_reference_tightly(self, plan1d, rng):
        f = rng.standard_normal((4, 16)) + 1j * rng.standard_normal((4, 16))
        fast = U.usfft1d_type2(f, plan1d)
        with U.reference_kernels():
            ref = U.usfft1d_type2(f, plan1d)
        np.testing.assert_allclose(fast, ref, rtol=1e-12, atol=1e-12)


class TestWorkspaceReuse:
    """The preallocated padded workspace must not leak state across calls."""

    def test_repeated_1d_calls_identical(self, plan1d, rng):
        f = _rand_c64(rng, (3, 16))
        first = U.usfft1d_type2(f, plan1d)
        np.testing.assert_array_equal(first, U.usfft1d_type2(f, plan1d))

    def test_repeated_2d_calls_identical(self, plan2d, rng):
        f = _rand_c64(rng, (5, 8, 12))
        first = U.usfft2d_type2(f, plan2d)
        np.testing.assert_array_equal(first, U.usfft2d_type2(f, plan2d))

    def test_interleaved_dtypes_do_not_collide(self, plan1d, rng):
        f32 = _rand_c64(rng, (2, 16))
        f64 = f32.astype(np.complex128)
        a = U.usfft1d_type2(f32, plan1d)
        b = U.usfft1d_type2(f64, plan1d)
        np.testing.assert_array_equal(a, U.usfft1d_type2(f32, plan1d))
        np.testing.assert_array_equal(b, U.usfft1d_type2(f64, plan1d))

    def test_invalid_block_range_rejected(self, plan2d):
        with pytest.raises(ValueError):
            plan2d.block_gather(3, 2, np.complex64)
        with pytest.raises(ValueError):
            plan2d.block_scatter(0, plan2d.nslices + 1, np.complex64)


class TestAdjointUnderNewBackend:
    """The dot-product identity, re-run explicitly on the scipy backend in
    both precisions (complex128 keeps the double-precision bound; complex64
    meets a single-precision bound)."""

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_1d_dot_product_complex64(self, seed):
        rng = np.random.default_rng(seed)
        n, ns = 16, 13
        plan = U.USFFT1DPlan(n, rng.uniform(-n, n, size=ns), half_width=4)
        x = _rand_c64(rng, (n,))
        y = _rand_c64(rng, (ns,))
        with U.fft_backend(backend="scipy"):
            lhs = np.vdot(y, U.usfft1d_type2(x, plan))
            rhs = np.vdot(U.usfft1d_type1(y, plan), x)
        assert abs(lhs - rhs) <= 1e-4 * max(abs(lhs), 1.0)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_2d_dot_product_complex64(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-8, 8, size=(2, 17, 2))
        plan = U.USFFT2DPlan((8, 8), pts, half_width=3)
        x = _rand_c64(rng, (2, 8, 8))
        y = _rand_c64(rng, (2, 17))
        with U.fft_backend(backend="scipy"):
            lhs = np.vdot(y, U.usfft2d_type2(x, plan))
            rhs = np.vdot(U.usfft2d_type1(y, plan), x)
        assert abs(lhs - rhs) <= 1e-4 * max(abs(lhs), 1.0)

    def test_1d_dot_product_complex128_stays_double_grade(self, rng):
        n, ns = 16, 9
        plan = U.USFFT1DPlan(n, rng.uniform(-n, n, size=ns), half_width=4)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        y = rng.standard_normal(ns) + 1j * rng.standard_normal(ns)
        lhs = np.vdot(y, U.usfft1d_type2(x, plan))
        rhs = np.vdot(U.usfft1d_type1(y, plan), x)
        assert abs(lhs - rhs) <= 1e-10 * max(abs(lhs), 1.0)
