"""Geometry invariants: frequency factorization, tomography limit, bases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lamino import LaminoGeometry


def make(tilt=61.0, n=16, nth=12):
    return LaminoGeometry((n, n, n), n_angles=nth, det_shape=(n, n), tilt_deg=tilt)


class TestValidation:
    @pytest.mark.parametrize("shape", [(15, 16, 16), (16, 0, 16), (16, 16, 17)])
    def test_bad_volume_shapes(self, shape):
        with pytest.raises(ValueError):
            LaminoGeometry(shape, 8, (16, 16))

    def test_bad_angles(self):
        with pytest.raises(ValueError):
            LaminoGeometry((8, 8, 8), 0, (8, 8))

    @pytest.mark.parametrize("tilt", [0.0, -5.0, 90.5])
    def test_bad_tilt(self, tilt):
        with pytest.raises(ValueError):
            LaminoGeometry((8, 8, 8), 8, (8, 8), tilt_deg=tilt)

    def test_tilt_90_allowed(self):
        make(tilt=90.0)


class TestAngles:
    def test_angles_cover_full_rotation(self):
        g = make(nth=8)
        a = g.angles
        assert len(a) == 8
        assert a[0] == 0.0
        assert np.allclose(np.diff(a), 2 * np.pi / 8)

    def test_data_shape(self):
        g = make(n=16, nth=12)
        assert g.data_shape == (12, 16, 16)


class TestFrequencies:
    def test_z_freqs_scaled_regular_grid(self):
        g = make(tilt=30.0, n=16)
        s = g.z_freqs()
        assert s.shape == (16,)
        assert np.allclose(np.diff(s), np.sin(np.radians(30.0)))
        assert s[8] == 0.0  # centered

    def test_inplane_points_shape(self):
        g = make(n=8, nth=6)
        pts = g.inplane_points()
        assert pts.shape == (8, 6 * 8, 2)

    def test_factorization_consistency(self):
        """(kx, ky, kz) from z_freqs/inplane_points must equal xi*e1 + eta*e2."""
        g = make(tilt=47.0, n=8, nth=5)
        eta, xi = g.detector_freqs()
        pts = g.inplane_points().reshape(8, 5, 8, 2)
        kz = g.z_freqs()
        for i_eta in (0, 3, 7):
            for i_th, theta in enumerate(g.angles):
                e1, e2 = g.detector_axes(theta)
                for i_xi in (0, 4, 7):
                    k = xi[i_xi] * e1 + eta[i_eta] * e2
                    np.testing.assert_allclose(
                        pts[i_eta, i_th, i_xi], [k[0], k[1]], atol=1e-12
                    )
                    np.testing.assert_allclose(kz[i_eta], k[2], atol=1e-12)

    def test_tomography_limit_has_unit_z_scaling(self):
        g = make(tilt=90.0)
        eta, _ = g.detector_freqs()
        np.testing.assert_allclose(g.z_freqs(), eta)

    def test_tomography_limit_inplane_independent_of_eta(self):
        g = make(tilt=90.0, n=8, nth=4)
        pts = g.inplane_points().reshape(8, 4, 8, 2)
        # at phi=90, cos(phi)=0: the in-plane points are the same for all eta
        for i in range(1, 8):
            np.testing.assert_allclose(pts[i], pts[0], atol=1e-12)


class TestBases:
    @pytest.mark.parametrize("theta", [0.0, 0.7, 2.1, 5.5])
    def test_orthonormal_right_handed(self, theta):
        g = make(tilt=35.0)
        e1, e2 = g.detector_axes(theta)
        b = g.beam_direction(theta)
        for v in (e1, e2, b):
            assert np.isclose(np.linalg.norm(v), 1.0)
        assert np.isclose(e1 @ e2, 0.0, atol=1e-12)
        assert np.isclose(e1 @ b, 0.0, atol=1e-12)
        assert np.isclose(e2 @ b, 0.0, atol=1e-12)
        np.testing.assert_allclose(np.cross(e1, e2), b, atol=1e-12)


class TestScaling:
    def test_with_scale_halves_dimensions(self):
        g = LaminoGeometry((64, 64, 64), 64, (64, 64))
        s = g.with_scale(0.5)
        assert s.vol_shape == (32, 32, 32)
        assert s.n_angles == 32
        assert s.det_shape == (32, 32)
        assert s.tilt_deg == g.tilt_deg

    def test_with_scale_keeps_dimensions_even(self):
        g = LaminoGeometry((10, 10, 10), 10, (10, 10))
        s = g.with_scale(0.31)
        assert all(v % 2 == 0 for v in s.vol_shape + s.det_shape)
