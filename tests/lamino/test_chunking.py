"""Chunk partition properties (hypothesis-driven) and reassembly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lamino import Chunk, chunk_ranges, iter_chunks, num_chunks, reassemble


class TestChunkRanges:
    @given(n=st.integers(1, 500), size=st.integers(1, 64))
    def test_partition_covers_exactly(self, n, size):
        ranges = chunk_ranges(n, size)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (_a0, a1), (b0, _b1) in zip(ranges, ranges[1:]):
            assert a1 == b0  # contiguous, no overlap, no gap
        assert all(hi - lo <= size for lo, hi in ranges)
        assert sum(hi - lo for lo, hi in ranges) == n

    @given(n=st.integers(1, 500), size=st.integers(1, 64))
    def test_num_chunks_matches(self, n, size):
        assert num_chunks(n, size) == len(chunk_ranges(n, size))

    @pytest.mark.parametrize("n,size", [(10, 0), (10, -1), (0, 4), (-5, 4), (0, 0), (-1, -1)])
    def test_invalid_inputs(self, n, size):
        with pytest.raises(ValueError):
            chunk_ranges(n, size)
        with pytest.raises(ValueError):
            num_chunks(n, size)
        with pytest.raises(ValueError):
            list(iter_chunks(n, size))


class TestChunk:
    def test_take_put_roundtrip_axis1(self):
        a = np.arange(24).reshape(2, 6, 2)
        chunk = Chunk(index=1, axis=1, lo=2, hi=5)
        sub = chunk.take(a)
        assert sub.shape == (2, 3, 2)
        b = np.zeros_like(a)
        chunk.put(b, sub)
        np.testing.assert_array_equal(b[:, 2:5, :], sub)
        assert b[:, :2].sum() == 0 and b[:, 5:].sum() == 0

    def test_size_and_slice(self):
        c = Chunk(index=0, axis=0, lo=4, hi=9)
        assert c.size == 5
        assert c.slice == slice(4, 9)

    def test_iter_chunks_indices_are_sequential(self):
        chunks = list(iter_chunks(10, 4))
        assert [c.index for c in chunks] == [0, 1, 2]
        assert [c.size for c in chunks] == [4, 4, 2]


class TestReassemble:
    def test_roundtrip(self):
        a = np.random.default_rng(0).random((7, 3))
        pairs = [(c, c.take(a)) for c in iter_chunks(7, 3)]
        out = reassemble(pairs, a.shape, a.dtype)
        np.testing.assert_array_equal(out, a)

    def test_incomplete_cover_raises(self):
        a = np.zeros((7, 3))
        pairs = [(c, c.take(a)) for c in list(iter_chunks(7, 3))[:-1]]
        with pytest.raises(ValueError):
            reassemble(pairs, a.shape, a.dtype)

    def test_out_of_order_chunks(self):
        a = np.random.default_rng(1).random((10, 4))
        pairs = [(c, c.take(a)) for c in iter_chunks(10, 3)]
        pairs.reverse()
        np.testing.assert_array_equal(reassemble(pairs, a.shape, a.dtype), a)

    def test_single_chunk_identity(self):
        a = np.random.default_rng(2).random((5, 2))
        [chunk] = iter_chunks(5, 5)
        out = reassemble([(chunk, a)], a.shape, a.dtype)
        np.testing.assert_array_equal(out, a)

    def test_dtype_preserved(self):
        a = np.random.default_rng(3).random((6, 2)).astype(np.float32)
        pairs = [(c, (c.take(a) + 1j * c.take(a)).astype(np.complex64)) for c in iter_chunks(6, 2)]
        out = reassemble(pairs, a.shape, np.complex64)
        assert out.dtype == np.complex64
        np.testing.assert_array_equal(out.real, a)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            reassemble([], (4, 2), np.float64)

    def test_duplicate_chunk_raises(self):
        """A duplicate plus a gap can match the covered length while leaving
        uninitialized memory — must raise, not return garbage."""
        a = np.zeros((8, 2))
        chunks = list(iter_chunks(8, 4))
        pairs = [(chunks[0], a[:4]), (chunks[0], a[:4])]
        with pytest.raises(ValueError):
            reassemble(pairs, a.shape, a.dtype)

    def test_mixed_axes_raise(self):
        from repro.lamino import Chunk

        pairs = [
            (Chunk(0, 0, 0, 2), np.zeros((2, 4))),
            (Chunk(1, 1, 2, 4), np.zeros((4, 2))),
        ]
        with pytest.raises(ValueError):
            reassemble(pairs, (4, 4), np.float64)

    def test_overlap_raises(self):
        from repro.lamino import Chunk

        pairs = [
            (Chunk(0, 0, 0, 3), np.zeros((3, 2))),
            (Chunk(1, 0, 2, 4), np.zeros((2, 2))),
        ]
        with pytest.raises(ValueError):
            reassemble(pairs, (4, 2), np.float64)
