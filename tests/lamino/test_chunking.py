"""Chunk partition properties (hypothesis-driven) and reassembly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lamino import Chunk, chunk_ranges, iter_chunks, num_chunks, reassemble


class TestChunkRanges:
    @given(n=st.integers(1, 500), size=st.integers(1, 64))
    def test_partition_covers_exactly(self, n, size):
        ranges = chunk_ranges(n, size)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0  # contiguous, no overlap, no gap
        assert all(hi - lo <= size for lo, hi in ranges)
        assert sum(hi - lo for lo, hi in ranges) == n

    @given(n=st.integers(1, 500), size=st.integers(1, 64))
    def test_num_chunks_matches(self, n, size):
        assert num_chunks(n, size) == len(chunk_ranges(n, size))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            chunk_ranges(10, 0)
        with pytest.raises(ValueError):
            chunk_ranges(0, 4)


class TestChunk:
    def test_take_put_roundtrip_axis1(self):
        a = np.arange(24).reshape(2, 6, 2)
        chunk = Chunk(index=1, axis=1, lo=2, hi=5)
        sub = chunk.take(a)
        assert sub.shape == (2, 3, 2)
        b = np.zeros_like(a)
        chunk.put(b, sub)
        np.testing.assert_array_equal(b[:, 2:5, :], sub)
        assert b[:, :2].sum() == 0 and b[:, 5:].sum() == 0

    def test_size_and_slice(self):
        c = Chunk(index=0, axis=0, lo=4, hi=9)
        assert c.size == 5
        assert c.slice == slice(4, 9)

    def test_iter_chunks_indices_are_sequential(self):
        chunks = list(iter_chunks(10, 4))
        assert [c.index for c in chunks] == [0, 1, 2]
        assert [c.size for c in chunks] == [4, 4, 2]


class TestReassemble:
    def test_roundtrip(self):
        a = np.random.default_rng(0).random((7, 3))
        pairs = [(c, c.take(a)) for c in iter_chunks(7, 3)]
        out = reassemble(pairs, a.shape, a.dtype)
        np.testing.assert_array_equal(out, a)

    def test_incomplete_cover_raises(self):
        a = np.zeros((7, 3))
        pairs = [(c, c.take(a)) for c in list(iter_chunks(7, 3))[:-1]]
        with pytest.raises(ValueError):
            reassemble(pairs, a.shape, a.dtype)
