"""Offload substrate: variable inventory, phase tracing, real SSD spills."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memio import (
    PhaseTrace,
    SpillManager,
    admm_variables,
    peak_resident_bytes,
    total_bytes,
)


class TestVariables:
    def test_inventory_names(self):
        v = admm_variables(1024)
        assert {"u", "psi", "lam", "g", "g_prev", "d", "dhat", "work"} <= set(v)

    def test_field_variables_are_3x_volume(self):
        v = admm_variables(128)
        assert v["psi"].nbytes == 3 * v["u"].nbytes
        assert v["psi"].nbytes == v["lam"].nbytes == v["g"].nbytes

    def test_1k_peak_near_paper_121gb(self):
        """Figure 13: no-offload peak ~121 GB at (1K)^3."""
        total = total_bytes(admm_variables(1024))
        assert 100 * 2**30 < total < 150 * 2**30

    def test_aliased_vars_not_candidates(self):
        v = admm_variables(64)
        assert not v["u"].offload_candidate
        assert v["psi"].offload_candidate

    def test_peak_resident_excludes_offloaded(self):
        v = admm_variables(64)
        full = peak_resident_bytes(v)
        part = peak_resident_bytes(v, offloaded={"psi", "lam"})
        assert part == full - v["psi"].nbytes - v["lam"].nbytes

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            admm_variables(1)


class TestPhaseTrace:
    def test_access_ordering(self):
        t = PhaseTrace()
        t.begin_iteration(0)
        t.begin_phase("lsp")
        t.touch("u", "r")
        t.touch("g", "w")
        t.begin_phase("rsp")
        t.touch("psi", "rw")
        t.end_iteration()
        assert [a.variable for a in t.accesses] == ["u", "g", "psi"]
        assert t.phases(0) == ["lsp", "rsp"]
        assert t.variables() == ["g", "psi", "u"]

    def test_invalid_mode(self):
        t = PhaseTrace()
        with pytest.raises(ValueError):
            t.touch("u", "x")

    def test_phase_access_map(self):
        t = PhaseTrace()
        t.begin_iteration(1)
        t.begin_phase("lsp")
        t.touch("u", "r")
        t.touch("u", "w")
        assert t.phase_access_map(1) == {"lsp": {"u"}}

    def test_last_access_phase(self):
        t = PhaseTrace()
        t.begin_iteration(0)
        t.begin_phase("lsp")
        t.touch("psi", "r")
        t.begin_phase("rsp")
        t.touch("psi", "w")
        assert t.last_access_phase(0, "psi") == "rsp"
        assert t.last_access_phase(0, "nope") is None


class TestSpillManager:
    def test_spill_fetch_roundtrip(self, rng, tmp_path):
        with SpillManager(str(tmp_path)) as sm:
            a = rng.standard_normal((32, 32)).astype(np.float32)
            sm.spill("psi", a)
            assert sm.is_spilled("psi")
            out = sm.fetch("psi")
            np.testing.assert_array_equal(out, a)
            assert sm.stats.spills == 1 and sm.stats.loads == 1

    def test_prefetch_hides_load(self, rng, tmp_path):
        with SpillManager(str(tmp_path)) as sm:
            a = rng.standard_normal(1000)
            sm.spill("g", a)
            sm.prefetch("g")
            out = sm.fetch("g")
            np.testing.assert_array_equal(out, a)
            assert sm.stats.prefetches == 1

    def test_fetch_unspilled_raises(self, tmp_path):
        with SpillManager(str(tmp_path)) as sm:
            with pytest.raises(KeyError):
                sm.fetch("ghost")

    def test_prefetch_unspilled_raises(self, tmp_path):
        with SpillManager(str(tmp_path)) as sm:
            with pytest.raises(KeyError):
                sm.prefetch("ghost")

    def test_double_prefetch_is_idempotent(self, rng, tmp_path):
        with SpillManager(str(tmp_path)) as sm:
            sm.spill("x", rng.standard_normal(10))
            sm.prefetch("x")
            sm.prefetch("x")
            assert sm.stats.prefetches == 1

    def test_discard(self, rng, tmp_path):
        with SpillManager(str(tmp_path)) as sm:
            sm.spill("x", rng.standard_normal(10))
            sm.discard("x")
            assert not sm.is_spilled("x")

    def test_byte_accounting(self, rng, tmp_path):
        with SpillManager(str(tmp_path)) as sm:
            a = rng.standard_normal(256)
            sm.spill("v", a)
            sm.fetch("v")
            assert sm.stats.bytes_written == a.nbytes
            assert sm.stats.bytes_read == a.nbytes


class TestSpillManagerConcurrency:
    """Safety properties the streaming pipeline leans on."""

    def test_double_close_is_idempotent(self, rng, tmp_path):
        sm = SpillManager(str(tmp_path))
        sm.spill("x", rng.standard_normal(8))
        sm.close()
        sm.close()  # must not raise

    def test_close_with_inflight_prefetch(self, rng):
        sm = SpillManager()  # owned temp dir, removed on close
        sm.spill("big", rng.standard_normal(200_000))
        sm.prefetch("big")
        sm.close()  # waits out the load; no error, no leaked dir
        sm.close()

    def test_prefetch_after_close_is_noop(self, rng, tmp_path):
        sm = SpillManager(str(tmp_path))
        sm.spill("x", rng.standard_normal(8))
        sm.close()
        sm.prefetch("x")  # must not raise, must not submit
        assert sm.stats.prefetches == 0

    def test_spill_after_close_raises(self, rng, tmp_path):
        sm = SpillManager(str(tmp_path))
        sm.close()
        with pytest.raises(RuntimeError):
            sm.spill("x", rng.standard_normal(8))

    def test_concurrent_prefetch_single_submission(self, rng, tmp_path):
        import threading

        with SpillManager(str(tmp_path)) as sm:
            sm.spill("x", rng.standard_normal(50_000))
            barrier = threading.Barrier(8)

            def hammer():
                barrier.wait()
                sm.prefetch("x")

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # one in-flight load, counted once
            assert sm.stats.prefetches == 1
            out = sm.fetch("x")
            assert out.shape == (50_000,)

    def test_close_waits_for_inflight_spills(self, rng):
        """close() racing spill() must neither crash the writer nor leak
        the owned temp directory: either the spill loses (RuntimeError from
        the closed check) or its file is registered and cleaned up."""
        import os
        import threading

        for _trial in range(4):
            sm = SpillManager()
            directory = sm._dir
            barrier = threading.Barrier(2)
            errors = []

            def writer():
                barrier.wait()
                for i in range(20):
                    try:
                        sm.spill(f"w{i}", rng.standard_normal(20_000))
                    except RuntimeError:
                        return  # lost the race to close(): the legal outcome
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

            t = threading.Thread(target=writer)
            t.start()
            barrier.wait()
            sm.close()
            t.join(timeout=10)
            assert not t.is_alive()
            assert errors == []
            assert not os.path.exists(directory)

    def test_respill_with_inflight_prefetch(self, rng, tmp_path):
        """Re-spilling a name retires the in-flight load of the old bytes;
        the next fetch sees the new data, never a torn file."""
        with SpillManager(str(tmp_path)) as sm:
            old = rng.standard_normal(100_000)
            new = rng.standard_normal(100_000)
            sm.spill("x", old)
            for _ in range(5):
                sm.prefetch("x")
                sm.spill("x", new)
                np.testing.assert_array_equal(sm.fetch("x"), new)
                sm.spill("x", old)
                np.testing.assert_array_equal(sm.fetch("x"), old)

    def test_concurrent_spill_fetch_stats(self, rng, tmp_path):
        import threading

        with SpillManager(str(tmp_path)) as sm:
            arrays = {f"v{i}": rng.standard_normal(1000) for i in range(8)}

            def worker(name, arr):
                sm.spill(name, arr)
                sm.prefetch(name)
                np.testing.assert_array_equal(sm.fetch(name), arr)

            threads = [
                threading.Thread(target=worker, args=(n, a))
                for n, a in arrays.items()
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sm.stats.spills == 8
            assert sm.stats.loads == 8
            assert sm.stats.bytes_read == sum(a.nbytes for a in arrays.values())
