"""The zero-overhead seam: disabled mode allocates nothing, configure()
swaps generations atomically, the env gate works at import time."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.obs import ObsConfig
from repro.obs import runtime as obs
from repro.obs.runtime import _NULL_COUNTER, _NULL_GAUGE, _NULL_HISTOGRAM


class TestDisabledMode:
    def test_disabled_calls_allocate_no_registry_entries(self, disabled):
        for i in range(100):
            obs.counter("c", i=i).inc()
            obs.gauge("g", i=i).set(i)
            obs.histogram("h", i=i).observe(1e-3)
            with obs.span("s", i=i):
                pass
        assert len(obs.registry()) == 0
        assert obs.snapshot() == []
        assert obs.drain_spans() == ([], 0)

    def test_disabled_handles_are_shared_singletons(self, disabled):
        assert obs.counter("a") is _NULL_COUNTER is obs.counter("b", x=1)
        assert obs.gauge("a") is _NULL_GAUGE
        assert obs.histogram("a") is _NULL_HISTOGRAM
        # the null objects answer the full metric surface
        assert obs.counter("a").value == 0.0
        assert obs.histogram("a").quantile(0.99) == 0.0

    def test_default_state_honors_absent_env(self):
        # the suite runs without REPRO_OBS: reset() must land disabled
        obs.reset()
        assert os.environ.get("REPRO_OBS", "0") in ("", "0")
        assert not obs.enabled()


class TestConfigure:
    def test_configure_enables_and_reset_restores(self):
        obs.configure(ObsConfig())
        assert obs.enabled()
        obs.counter("x").inc()
        assert len(obs.registry()) == 1
        obs.reset()
        assert not obs.enabled()
        assert len(obs.registry()) == 0  # fresh generation

    def test_configure_disabled_config_stays_off(self):
        obs.configure(ObsConfig(enabled=False))
        assert not obs.enabled()
        obs.counter("x").inc()
        assert len(obs.registry()) == 0

    def test_configure_rejects_non_config(self):
        with pytest.raises(TypeError):
            obs.configure({"enabled": True})

    def test_configure_sizes_histograms_from_config(self):
        obs.configure(ObsConfig(histogram_min_s=1e-3, histogram_max_s=1.0,
                                buckets_per_decade=2))
        h = obs.histogram("lat")
        assert h.edges[0] == pytest.approx(1e-3)
        assert h.edges[-1] == pytest.approx(1.0)

    def test_old_generation_handles_keep_working(self):
        obs.configure(ObsConfig())
        old = obs.counter("x")
        obs.configure(ObsConfig())
        old.inc()  # no crash; but the new registry does not see it
        assert obs.counter("x").value == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(span_buffer=0)
        with pytest.raises(ValueError):
            ObsConfig(histogram_min_s=0.0)
        with pytest.raises(ValueError):
            ObsConfig(histogram_max_s=1e-7)  # below min
        with pytest.raises(ValueError):
            ObsConfig(buckets_per_decade=0)


class TestEnvGate:
    def test_repro_obs_env_enables_at_import(self):
        code = (
            "from repro.obs import runtime as obs\n"
            "obs.counter('boot').inc()\n"
            "print(obs.enabled(), len(obs.registry()))\n"
        )
        env = dict(os.environ, PYTHONPATH="src", REPRO_OBS="1")
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True,
            text=True, cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.split() == ["True", "1"]

    def test_repro_obs_zero_stays_disabled(self):
        code = (
            "from repro.obs import runtime as obs\n"
            "obs.counter('boot').inc()\n"
            "print(obs.enabled(), len(obs.registry()))\n"
        )
        env = dict(os.environ, PYTHONPATH="src", REPRO_OBS="0")
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True,
            text=True, cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.split() == ["False", "0"]


class TestMLRConfigSeam:
    def test_solver_config_carries_obs(self, tiny_geometry):
        from repro.core import MLRConfig, MLRSolver

        cfg = MLRConfig(chunk_size=8, obs=ObsConfig())
        solver = MLRSolver(tiny_geometry, cfg)
        assert obs.enabled()
        solver.close()

    def test_solver_config_rejects_bad_obs(self):
        from repro.core import MLRConfig

        with pytest.raises(ValueError):
            MLRConfig(obs="yes")

    def test_solver_without_obs_leaves_runtime_alone(self, tiny_geometry):
        from repro.core import MLRConfig, MLRSolver

        solver = MLRSolver(tiny_geometry, MLRConfig(chunk_size=8))
        assert not obs.enabled()
        solver.close()
