"""The MSG_METRICS pull: daemon-side snapshot over the wire, client
request-latency histograms, degraded-mode counters, --metrics-dump."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MemoConfig
from repro.core.memo_shard import ShardInsert, ShardQuery
from repro.net import MemoServerDaemon, RemoteMemoClient
from repro.net.server import main as server_main
from repro.obs import runtime as obs


def memo_cfg() -> MemoConfig:
    return MemoConfig(tau=0.9, index_train_min=4, index_clusters=2, index_nprobe=2)


@pytest.fixture()
def daemon():
    with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as d:
        yield d


def traffic(client, rng):
    dim = 16
    inserts = [
        ShardInsert("Fu1D", loc, rng.standard_normal(dim).astype(np.float32),
                    np.ones((2, 2), np.complex64), meta=(1.0, 0j))
        for loc in range(8)
    ]
    client.insert_batch(inserts)
    client.flush()
    probes = [ShardQuery("Fu1D", i.location, i.key) for i in inserts]
    return client.query_batch(probes)


class TestMetricsPull:
    def test_metrics_returns_server_view(self, enabled, daemon, rng):
        with RemoteMemoClient(daemon.address, expect_tau=memo_cfg().tau) as client:
            traffic(client, rng)
            payload = client.metrics()
        assert payload["obs_enabled"] is True
        server = payload["server"]
        assert server["metrics_pulls"] == 1
        assert server["query_batches"] == 1
        assert server["insert_batches"] == 1
        names = {e["name"] for e in payload["metrics"]}
        # request + shard service-time histograms from the daemon side
        assert "net_server_request_seconds" in names
        assert "net_server_shard_seconds" in names
        assert "net_server_queries" in names

    def test_request_types_label_the_histograms(self, enabled, daemon, rng):
        with RemoteMemoClient(daemon.address, expect_tau=memo_cfg().tau) as client:
            traffic(client, rng)
            payload = client.metrics()
        types = {
            e["labels"]["type"]
            for e in payload["metrics"]
            if e["name"] == "net_server_request_seconds"
        }
        assert {"query_batch", "insert_batch"} <= types

    def test_client_latency_histograms_by_message_type(self, enabled, daemon, rng):
        with RemoteMemoClient(daemon.address, expect_tau=memo_cfg().tau) as client:
            traffic(client, rng)
            client.stats()
        series = {
            (e["name"], e["labels"].get("type")): e
            for e in obs.snapshot()
            if e["name"] == "net_client_request_seconds"
        }
        assert ("net_client_request_seconds", "query_batch") in series
        assert ("net_client_request_seconds", "stats") in series
        q = series[("net_client_request_seconds", "query_batch")]
        assert q["count"] == 1 and q["sum"] > 0.0

    def test_client_publish_rides_along(self, enabled, daemon, rng):
        with RemoteMemoClient(daemon.address, expect_tau=memo_cfg().tau) as client:
            traffic(client, rng)
            client.metrics()
        local = {e["name"]: e for e in obs.snapshot()}
        # published before the MSG_METRICS round trip itself is counted
        assert local["net_client_requests"]["value"] == 2  # insert + query
        assert local["net_client_pipelined_inserts"]["value"] == 8

    def test_obs_disabled_server_synthesizes_gauges(self, disabled, daemon, rng):
        with RemoteMemoClient(daemon.address, expect_tau=memo_cfg().tau) as client:
            traffic(client, rng)
            payload = client.metrics()
        assert payload["obs_enabled"] is False
        names = {e["name"] for e in payload["metrics"]}
        assert "net_server_query_batches" in names  # synthesized from ServerStats
        assert "net_server_request_seconds" not in names  # no histograms while off
        by_name = {e["name"]: e for e in payload["metrics"]}
        assert by_name["net_server_query_batches"]["value"] == 1.0
        # the local process allocated nothing
        assert len(obs.registry()) == 0


class TestDegraded:
    def test_unreachable_server_fail_open(self, enabled):
        with MemoServerDaemon(n_shards=1, memo=memo_cfg()) as d:
            addr = d.address
        client = RemoteMemoClient(addr, fail_open=True)
        assert client.metrics() is None
        assert client.net_stats.degraded_stats_pulls == 1
        degraded = {
            e["labels"]["kind"]: e["value"]
            for e in obs.snapshot()
            if e["name"] == "net_client_degraded_total"
        }
        assert degraded.get("metrics_pull") == 1
        client.close()

    def test_degraded_queries_count_in_registry(self, enabled, rng):
        with MemoServerDaemon(n_shards=1, memo=memo_cfg()) as d:
            addr = d.address
        client = RemoteMemoClient(addr, fail_open=True)
        probes = [
            ShardQuery("Fu1D", 0, rng.standard_normal(16).astype(np.float32))
            for _ in range(5)
        ]
        outcomes = client.query_batch(probes)
        assert all(not o.hit for o in outcomes)
        degraded = {
            e["labels"]["kind"]: e["value"]
            for e in obs.snapshot()
            if e["name"] == "net_client_degraded_total"
        }
        assert degraded == {"query_batch": 1, "query": 5}
        client.close()

    def test_fail_closed_still_raises(self, enabled):
        with MemoServerDaemon(n_shards=1, memo=memo_cfg()) as d:
            addr = d.address
        client = RemoteMemoClient(addr, fail_open=False)
        with pytest.raises(OSError):
            client.metrics()
        client.close()


class TestMetricsDumpCli:
    def test_metrics_dump_prints_prometheus(self, enabled, daemon, rng, capsys):
        with RemoteMemoClient(daemon.address, expect_tau=memo_cfg().tau) as client:
            traffic(client, rng)
        host, port = daemon.address
        assert server_main(["--metrics-dump", f"{host}:{port}"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE net_server_query_batches gauge" in out
        assert 'net_server_query_batches{server="memo-server"} 1' in out
        assert "net_server_request_seconds_bucket" in out

    def test_metrics_dump_against_dead_server_fails(self, enabled):
        with MemoServerDaemon(n_shards=1, memo=memo_cfg()) as d:
            host, port = d.address
        with pytest.raises((OSError, ValueError)):
            server_main(["--metrics-dump", f"{host}:{port}"])
