"""Exporters and the report CLI: Prometheus text, JSONL round-trip,
per-stage latency tables."""

from __future__ import annotations

import json

from repro.obs import (
    build_report,
    dump_jsonl,
    load_jsonl,
    render_report,
    report_from_file,
    to_prometheus,
)
from repro.obs import runtime as obs
from repro.obs.__main__ import main as obs_main


def populate():
    obs.counter("memo_chunks_total", op="Fu1D", case="db_hit").inc(7)
    obs.gauge("scheduler_queue_depth").set(3)
    h = obs.histogram("usfft_seconds", xform="1d_type2")
    for v in (1e-4, 2e-4, 4e-4, 8e-4):
        h.observe(v)
    with obs.span("sweep.Fu1D", chunk=0):
        pass
    with obs.span("sweep.Fu1D", chunk=1):
        pass


class TestPrometheus:
    def test_counter_gauge_histogram_rendering(self, enabled):
        populate()
        text = to_prometheus()
        assert '# TYPE memo_chunks_total counter' in text
        assert 'memo_chunks_total{case="db_hit",op="Fu1D"} 7' in text
        assert 'scheduler_queue_depth 3' in text
        assert 'scheduler_queue_depth_max 3' in text
        # cumulative buckets, +Inf, _count and _sum
        assert 'usfft_seconds_bucket{le="+Inf",xform="1d_type2"} 4' in text
        assert 'usfft_seconds_count{xform="1d_type2"} 4' in text
        assert 'usfft_seconds_sum{xform="1d_type2"} 0.0015' in text
        # every exposed name is legal Prometheus
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert name.replace("_", "").replace(":", "").isalnum()

    def test_cumulative_buckets_are_monotone(self, enabled):
        populate()
        counts = []
        for line in to_prometheus().splitlines():
            if line.startswith("usfft_seconds_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_empty_registry_renders_empty(self, enabled):
        assert to_prometheus() == ""


class TestJsonlRoundTrip:
    def test_dump_and_load(self, enabled, tmp_path):
        populate()
        path = tmp_path / "obs.jsonl"
        n = dump_jsonl(str(path))
        data = load_jsonl(str(path))
        assert data["meta"]["version"] == 1
        assert data["meta"]["dropped_spans"] == 0
        assert len(data["metrics"]) + len(data["spans"]) + 1 == n
        names = {m["name"] for m in data["metrics"]}
        assert names == {"memo_chunks_total", "scheduler_queue_depth", "usfft_seconds"}
        assert [s["name"] for s in data["spans"]] == ["sweep.Fu1D", "sweep.Fu1D"]
        # every line is valid standalone JSON with a rec discriminator
        with open(path) as fh:
            for raw in fh:
                assert json.loads(raw)["rec"] in ("meta", "metric", "span")

    def test_dump_drains_the_collector(self, enabled, tmp_path):
        populate()
        dump_jsonl(str(tmp_path / "a.jsonl"))
        dump_jsonl(str(tmp_path / "b.jsonl"))
        data = load_jsonl(str(tmp_path / "b.jsonl"))
        assert data["spans"] == []  # the first dump consumed them

    def test_unknown_record_type_raises(self, enabled, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"rec": "mystery"}\n')
        try:
            load_jsonl(str(path))
        except ValueError as exc:
            assert "mystery" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestReport:
    def test_build_report_aggregates_spans_and_histograms(self, enabled, tmp_path):
        populate()
        path = tmp_path / "obs.jsonl"
        dump_jsonl(str(path))
        report = build_report(load_jsonl(str(path)))
        sweep = next(r for r in report["spans"] if r["name"] == "sweep.Fu1D")
        assert sweep["count"] == 2
        assert sweep["p50_s"] <= sweep["p95_s"] <= sweep["p99_s"]
        hist = next(r for r in report["histograms"] if r["name"] == "usfft_seconds")
        assert hist["count"] == 4
        assert 1e-4 <= hist["p50_s"] <= 8e-4
        scalar_names = {s["name"] for s in report["scalars"]}
        assert {"memo_chunks_total", "scheduler_queue_depth"} <= scalar_names

    def test_render_report_prints_stage_tables(self, enabled, tmp_path):
        populate()
        path = tmp_path / "obs.jsonl"
        dump_jsonl(str(path))
        text = report_from_file(str(path))
        assert "== spans (per-stage latency) ==" in text
        assert "== histograms ==" in text
        assert "== counters / gauges ==" in text
        assert "sweep.Fu1D" in text
        assert "usfft_seconds" in text and "1d_type2" in text
        assert "p95" in text

    def test_dropped_spans_are_surfaced(self, enabled):
        report = build_report(
            {"meta": {"version": 1, "dropped_spans": 12}, "metrics": [], "spans": []}
        )
        assert "12" in render_report(report)


class TestCli:
    def test_report_command(self, enabled, tmp_path, capsys):
        populate()
        path = tmp_path / "obs.jsonl"
        dump_jsonl(str(path))
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sweep.Fu1D" in out and "== spans (per-stage latency) ==" in out

    def test_report_json_mode(self, enabled, tmp_path, capsys):
        populate()
        path = tmp_path / "obs.jsonl"
        dump_jsonl(str(path))
        assert obs_main(["report", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"][0]["name"] == "sweep.Fu1D"
