"""Metrics registry semantics: bucket edges, exact concurrent counting,
label series identity, kind safety."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry, log_bucket_edges


class TestBucketEdges:
    def test_edges_are_strictly_increasing_and_span_the_range(self):
        edges = log_bucket_edges(1e-6, 100.0, 4)
        assert all(a < b for a, b in zip(edges, edges[1:]))
        assert edges[0] == pytest.approx(1e-6)
        # the top edge covers max_value without a stray bucket beyond it
        assert edges[-1] == pytest.approx(100.0, rel=1e-6)

    def test_count_matches_decades_times_resolution(self):
        edges = log_bucket_edges(1e-3, 1.0, 5)
        # 3 decades x 5 buckets/decade, plus the bottom edge
        assert len(edges) == 16

    def test_invalid_ranges_raise(self):
        with pytest.raises(ValueError):
            log_bucket_edges(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            log_bucket_edges(-1.0, 10.0, 4)
        with pytest.raises(ValueError):
            log_bucket_edges(1e-6, 100.0, 0)


class TestCounter:
    def test_concurrent_increments_sum_exactly(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", op="Fu1D")
        n_threads, per_thread = 8, 5000

        def hammer():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread

    def test_label_sets_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", op="Fu1D").inc(3)
        reg.counter("hits", op="Fu2D").inc(5)
        assert reg.counter("hits", op="Fu1D").value == 3
        assert reg.counter("hits", op="Fu2D").value == 5
        assert len(reg) == 2

    def test_label_order_does_not_split_series(self):
        reg = MetricsRegistry()
        reg.counter("x", a="1", b="2").inc()
        reg.counter("x", b="2", a="1").inc()
        assert len(reg) == 1
        assert reg.counter("x", a="1", b="2").value == 2

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")
        with pytest.raises(TypeError):
            reg.histogram("m")


class TestGauge:
    def test_set_add_and_high_water_mark(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", queue="read")
        g.set(3)
        g.add(2)
        g.set(1)
        snap = g.snapshot()
        assert snap["value"] == 1
        assert snap["max"] == 5

    def test_concurrent_adds_sum_exactly(self):
        reg = MetricsRegistry()
        g = reg.gauge("acc")
        n_threads, per_thread = 8, 2000

        def hammer():
            for _ in range(per_thread):
                g.add(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert g.snapshot()["value"] == n_threads * per_thread


class TestHistogram:
    def test_concurrent_observes_count_and_sum_exactly(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        n_threads, per_thread = 8, 3000

        def hammer():
            for i in range(per_thread):
                h.observe(1e-4)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = h.snapshot()
        assert snap["count"] == n_threads * per_thread
        assert snap["sum"] == pytest.approx(n_threads * per_thread * 1e-4)
        # bounded storage: bucket counts, never a sample list
        assert sum(snap["counts"]) == snap["count"]
        assert len(snap["counts"]) == len(snap["edges"]) + 1

    def test_overflow_bucket_catches_out_of_range(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", edges=(0.001, 0.01, 0.1))
        h.observe(5.0)  # beyond the top edge
        snap = h.snapshot()
        assert snap["counts"][-1] == 1
        assert snap["max"] == 5.0

    def test_quantile_is_monotone_and_bracketed(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 1e-2):
            h.observe(v)
        q50, q95, q99 = h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)
        assert q50 <= q95 <= q99
        snap = h.snapshot()
        assert snap["min"] <= q50
        assert q99 <= snap["max"] * (1 + 1e-9)

    def test_default_edges_come_from_the_registry(self):
        reg = MetricsRegistry(default_edges=(0.1, 1.0))
        h = reg.histogram("lat")
        assert tuple(h.edges) == (0.1, 1.0)
        with pytest.raises(ValueError):
            reg.histogram("bad", edges=(1.0, 0.5))  # not increasing


class TestRegistrySnapshot:
    def test_snapshot_is_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        reg.histogram("c").observe(0.1)
        names = [e["name"] for e in reg.snapshot()]
        assert names == ["a", "b", "c"]

    def test_clear_empties_the_registry(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.clear()
        assert len(reg) == 0
        assert reg.snapshot() == []
