"""Live telemetry plane: the HTTP scrape/probe server.

The contract under test: a ``/metrics`` scrape reconciles *exactly* with
the in-process registry (valid Prometheus text, cumulative buckets),
``/readyz`` flips 503 <-> 200 with its probes, ``/snapshot`` is
report-compatible, hooks are isolation boundaries, and the bind address
goes through the same validation (same rejection message) as the memo
daemon's.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

import repro.obs as obs
from repro.net.wire import parse_address
from repro.obs import ObsConfig
from repro.obs.http import TelemetryServer
from repro.obs.report import build_report


def _get(url: str):
    """(status, content_type, body_bytes) — 4xx/5xx included, not raised."""
    try:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type"), err.read()


class TestMetrics:
    def test_scrape_reconciles_exactly_with_registry(self, enabled):
        obs.counter("memo_chunks_total", op="Fu1D", case="cache_hit").inc(5)
        obs.gauge("scheduler_queue_depth").set(3)
        for dt in (0.001, 0.01, 0.01, 0.25):
            obs.histogram("job_run_seconds", job="a").observe(dt)
        with TelemetryServer() as srv:
            status, ctype, body = _get(srv.url + "/metrics")
        assert status == 200
        assert ctype == "text/plain; version=0.0.4; charset=utf-8"
        # byte-for-byte the same exposition the in-process exporter renders
        assert body.decode("utf-8") == obs.to_prometheus(obs.snapshot())

    def test_histogram_buckets_cumulative_and_consistent(self, enabled):
        h = obs.histogram("lat_seconds")
        for dt in (1e-5, 1e-3, 1e-3, 0.5, 50.0):
            h.observe(dt)
        with TelemetryServer() as srv:
            _, _, body = _get(srv.url + "/metrics")
        buckets, count = [], None
        for line in body.decode().splitlines():
            if line.startswith("lat_seconds_bucket"):
                buckets.append(int(line.rsplit(" ", 1)[1]))
            elif line.startswith("lat_seconds_count"):
                count = int(line.rsplit(" ", 1)[1])
        assert buckets, body
        assert buckets == sorted(buckets)  # cumulative => non-decreasing
        assert buckets[-1] == count == 5  # +Inf bucket equals _count

    def test_collect_hook_extras_rendered(self, enabled):
        extra = {
            "kind": "gauge",
            "name": "memo_tier_bytes",
            "labels": {"op": "Fu1D"},
            "value": 123.0,
            "max": 123.0,
        }
        with TelemetryServer(collect=[lambda: [extra]]) as srv:
            _, _, body = _get(srv.url + "/metrics")
        assert 'memo_tier_bytes{op="Fu1D"} 123' in body.decode()

    def test_hook_exception_degrades_scrape_not_fails(self, enabled):
        obs.counter("survives_total").inc()

        def bad_hook():
            raise RuntimeError("collector exploded")

        with TelemetryServer(collect=[bad_hook]) as srv:
            status, _, body = _get(srv.url + "/metrics")
            _, _, snap = _get(srv.url + "/snapshot")
        assert status == 200
        assert "survives_total 1" in body.decode()
        assert json.loads(snap)["meta"]["hook_errors"] >= 1


class TestProbes:
    def test_healthz_always_ok(self, enabled):
        with TelemetryServer() as srv:
            status, _, body = _get(srv.url + "/healthz")
        assert (status, body) == (200, b"ok\n")

    def test_readyz_flips_503_then_recovers(self, enabled):
        state = {"ok": True}

        def saturation():
            return state["ok"], "fine" if state["ok"] else "queue saturated"

        saturation.probe_name = "queue"
        with TelemetryServer(readiness=[saturation]) as srv:
            status, ctype, body = _get(srv.url + "/readyz")
            assert (status, json.loads(body)["ready"]) == (200, True)
            assert ctype == "application/json"

            state["ok"] = False
            status, _, body = _get(srv.url + "/readyz")
            payload = json.loads(body)
            assert status == 503
            assert payload["ready"] is False
            assert payload["probes"]["queue"] == {
                "ok": False,
                "detail": "queue saturated",
            }

            state["ok"] = True  # recovery flips it straight back
            status, _, _ = _get(srv.url + "/readyz")
            assert status == 200

    def test_probe_raising_counts_as_failing(self, enabled):
        def broken():
            raise OSError("backend gone")

        with TelemetryServer(readiness=[broken]) as srv:
            status, _, body = _get(srv.url + "/readyz")
        assert status == 503
        assert "OSError" in json.loads(body)["probes"]["broken"]["detail"]


class TestSnapshot:
    def test_snapshot_is_report_compatible(self, enabled):
        obs.counter("memo_chunks_total", op="Fu1D", case="miss").inc(2)
        with obs.span("sweep.Fu1D", chunk=0):
            pass
        with TelemetryServer(name="unit") as srv:
            status, ctype, body = _get(srv.url + "/snapshot")
        assert (status, ctype) == (200, "application/json")
        payload = json.loads(body)
        assert payload["meta"]["server"] == "unit"
        assert payload["meta"]["obs_enabled"] is True
        assert any(s["name"] == "sweep.Fu1D" for s in payload["spans"])
        # the same shape load_jsonl produces — build_report eats it directly
        report = build_report(payload)
        assert any(r["name"] == "memo_chunks_total" for r in report["scalars"])
        assert any(r["name"] == "sweep.Fu1D" for r in report["spans"])

    def test_unknown_path_404(self, enabled):
        with TelemetryServer() as srv:
            status, _, _ = _get(srv.url + "/nope")
        assert status == 404


class TestAddressValidation:
    @pytest.mark.parametrize("bad", ["no-port", ("::1", 80, 0)])
    def test_same_rejection_message_as_memo_daemon(self, bad):
        try:
            parse_address(bad)
        except (TypeError, ValueError) as exc:
            expected = str(exc)
        with pytest.raises((TypeError, ValueError), match=None) as err:
            TelemetryServer(bad)
        assert str(err.value) == expected


class TestRuntimeLifecycle:
    def test_obsconfig_http_port_starts_and_reset_stops(self):
        obs.configure(ObsConfig(enabled=True, http_port=0))
        srv = obs.telemetry_server()
        assert srv is not None
        url = srv.url
        status, _, _ = _get(url + "/healthz")
        assert status == 200
        obs.reset()
        assert obs.telemetry_server() is None
        with pytest.raises(OSError):
            urllib.request.urlopen(url + "/healthz", timeout=1.0)

    def test_disabled_runtime_starts_nothing(self):
        obs.configure(ObsConfig(enabled=False, http_port=0, profile_hz=10.0))
        assert obs.telemetry_server() is None
        assert obs.profiler() is None

    def test_reconfigure_replaces_server(self):
        obs.configure(ObsConfig(enabled=True, http_port=0))
        first = obs.telemetry_server()
        obs.configure(ObsConfig(enabled=True, http_port=0))
        second = obs.telemetry_server()
        assert second is not first
        with pytest.raises(OSError):
            urllib.request.urlopen(first.url + "/healthz", timeout=1.0)
        status, _, _ = _get(second.url + "/healthz")
        assert status == 200
