"""Trace spans: parentage, ring-buffer bounds, cross-thread propagation."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.obs import SpanCollector, current_span_id
from repro.obs import runtime as obs
from repro.obs.spans import NULL_SPAN
from repro.pipeline.pipeline import ChunkPipeline


def by_name(spans):
    out = {}
    for rec in spans:
        out.setdefault(rec["name"], []).append(rec)
    return out


class TestParentage:
    def test_nested_spans_link_parent_ids(self, enabled):
        with obs.span("outer"):
            outer_id = current_span_id()
            with obs.span("inner"):
                assert current_span_id() != outer_id
            assert current_span_id() == outer_id
        assert current_span_id() is None
        spans, dropped = obs.drain_spans()
        assert dropped == 0
        recs = by_name(spans)
        assert recs["outer"][0]["parent_id"] is None
        assert recs["inner"][0]["parent_id"] == recs["outer"][0]["span_id"]

    def test_siblings_share_a_parent(self, enabled):
        with obs.span("root"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        recs = by_name(obs.drain_spans()[0])
        root_id = recs["root"][0]["span_id"]
        assert recs["a"][0]["parent_id"] == root_id
        assert recs["b"][0]["parent_id"] == root_id

    def test_exception_is_recorded_and_propagates(self, enabled):
        with pytest.raises(KeyError):
            with obs.span("boom"):
                raise KeyError("x")
        rec = obs.drain_spans()[0][0]
        assert rec["error"] == "KeyError"

    def test_attrs_and_duration_are_recorded(self, enabled):
        with obs.span("work", chunk=3, op="Fu1D"):
            pass
        rec = obs.drain_spans()[0][0]
        assert rec["attrs"] == {"chunk": 3, "op": "Fu1D"}
        assert rec["dur_s"] >= 0.0


class TestRingBuffer:
    def test_overflow_drops_oldest_and_counts(self):
        coll = SpanCollector(capacity=4)
        for i in range(10):
            coll.record({"name": f"s{i}", "t0": float(i)})
        records, dropped = coll.drain()
        assert dropped == 6
        assert [r["name"] for r in records] == ["s6", "s7", "s8", "s9"]
        # drained: the buffers are empty and the drop count was handed over
        assert coll.drain() == ([], 0)

    def test_threads_record_into_their_own_rings(self, enabled):
        n_threads, per_thread = 4, 50
        barrier = threading.Barrier(n_threads)

        def work(k):
            barrier.wait()
            for i in range(per_thread):
                with obs.span("t.work", owner=k):
                    pass

        threads = [
            threading.Thread(target=work, args=(k,)) for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans, dropped = obs.drain_spans()
        assert dropped == 0
        assert len(spans) == n_threads * per_thread
        # drain is globally ordered by start time
        t0s = [rec["t0"] for rec in spans]
        assert t0s == sorted(t0s)


class TestPipelineThreads:
    def test_stage_spans_parent_to_the_pipeline_run(self, enabled):
        """Reader/writer run on worker threads but inherit the launching
        thread's context, so the whole pipeline forms one trace tree."""
        written = []

        def sweep(items):
            for item in items:
                with obs.span("kernel", i=item):
                    pass
                yield item, item * 2

        pipe = ChunkPipeline(
            source=range(6),
            sweep=sweep,
            sink=lambda chunk, value: written.append((chunk, value)),
            queue_depth=2,
            op="Fu1D",
        )
        pipe.run()
        assert written == [(i, i * 2) for i in range(6)]

        recs = by_name(obs.drain_spans()[0])
        run_id = recs["pipeline.run"][0]["span_id"]
        for stage in ("pipeline.reader", "pipeline.writer", "pipeline.compute"):
            assert recs[stage][0]["parent_id"] == run_id, stage
        # stage threads really are distinct threads, not the caller
        assert recs["pipeline.reader"][0]["thread"] != recs["pipeline.compute"][0]["thread"]
        assert recs["pipeline.writer"][0]["thread"] != recs["pipeline.compute"][0]["thread"]
        # kernels run on the calling thread inside the compute span
        compute_id = recs["pipeline.compute"][0]["span_id"]
        kernels = recs["kernel"]
        assert len(kernels) == 6
        assert all(k["parent_id"] == compute_id for k in kernels)

    def test_pipelined_executor_sweep_spans(self, enabled, tiny_ops):
        """The real seam: a PipelinedExecutor sweep produces per-chunk
        sweep.<op> spans parented under pipeline.compute."""
        from repro.pipeline.executor import PipelinedExecutor
        from repro.solvers.executor import DirectExecutor

        execu = PipelinedExecutor(DirectExecutor(tiny_ops, chunk_size=4))
        u = np.zeros(tiny_ops.geometry.vol_shape, dtype=np.complex64)
        execu.fu1d(u)
        recs = by_name(obs.drain_spans()[0])
        compute_id = recs["pipeline.compute"][0]["span_id"]
        sweeps = recs["sweep.Fu1D"]
        assert len(sweeps) == 4  # 16 rows / chunk_size 4
        assert all(s["parent_id"] == compute_id for s in sweeps)
        assert sorted(s["attrs"]["chunk"] for s in sweeps) == [0, 1, 2, 3]


class TestDisabled:
    def test_disabled_span_is_the_shared_null_singleton(self, disabled):
        assert obs.span("anything", k=1) is NULL_SPAN
        with obs.span("anything"):
            assert current_span_id() is None
        assert obs.drain_spans() == ([], 0)
