"""End-to-end instrumentation: a quick MLRSolver run over TCP produces a
JSONL dump whose report covers every tier (FFT, interp, ANN query, queue
wait, wire round trip) and whose memo gauges reconcile exactly with
MemoDBStats."""

from __future__ import annotations

import pytest

from repro.core import MemoConfig, MLRConfig, MLRSolver, ObsConfig, PipelineConfig
from repro.core.memo_db import MemoDBStats
from repro.net import MemoServerDaemon
from repro.obs import dump_jsonl, load_jsonl, report_from_file
from repro.obs import runtime as obs
from repro.solvers import ADMMConfig

ADMM = ADMMConfig(n_outer=5, n_inner=2, step_max_rel=4.0)


def memo_cfg(**over) -> MemoConfig:
    base = dict(tau=0.92, warmup_iterations=1, index_train_min=4,
                index_clusters=2, index_nprobe=2)
    base.update(over)
    return MemoConfig(**base)


@pytest.fixture()
def tcp_run(tiny_geometry, tiny_ops, tiny_data):
    """One quick reconstruction over loopback TCP with obs enabled;
    yields (solver, result) with the transport still up."""
    with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as srv:
        cfg = MLRConfig(
            chunk_size=4,
            memo=memo_cfg(transport="tcp", server_address=srv.address),
            n_workers=2, n_shards=2,
            obs=ObsConfig(),
        )
        solver = MLRSolver(tiny_geometry, cfg, admm=ADMM, ops=tiny_ops)
        result = solver.reconstruct(tiny_data)
        yield solver, result
        solver.close()


def series(snapshot, name):
    return [e for e in snapshot if e["name"] == name]


class TestSolverTcpAcceptance:
    def test_every_tier_appears_in_the_report(self, tcp_run, tmp_path):
        _solver, _result = tcp_run
        path = tmp_path / "run.jsonl"
        dump_jsonl(str(path))
        text = report_from_file(str(path))
        # per-stage latency table covers every tier of the stack
        for stage in ("solver.reconstruct", "admm.outer", "sweep.Fu1D",
                      "usfft.fft", "usfft.interp", "memo.ann_query",
                      "memo.dispatch"):
            assert stage in text, stage
        # wire round trip (client side) and per-op hit counters ride along
        assert "net_client_request_seconds" in text
        assert "memo_chunks_total" in text

    def test_span_tree_is_rooted_at_the_solver(self, tcp_run):
        _solver, _result = tcp_run
        spans, dropped = obs.drain_spans()
        by_id = {rec["span_id"]: rec for rec in spans}

        def root_of(rec):
            while rec["parent_id"] is not None and rec["parent_id"] in by_id:
                rec = by_id[rec["parent_id"]]
            return rec["name"]

        outers = [r for r in spans if r["name"] == "admm.outer"]
        assert len(outers) == ADMM.n_outer
        assert all(root_of(r) == "solver.reconstruct" for r in outers)
        sweeps = [r for r in spans if r["name"].startswith("sweep.")]
        assert sweeps and all(root_of(r) == "solver.reconstruct" for r in sweeps)

    def test_memo_gauges_reconcile_exactly_with_db_stats(self, tcp_run):
        solver, _result = tcp_run
        snapshot = obs.snapshot()
        per_op = []
        for op in solver.config.memo.memo_ops:
            stats = solver.memo_executor.db_stats(op)
            per_op.append(stats)
            expected = stats.as_dict()
            got = {
                e["name"]: e["value"]
                for e in snapshot
                if e["labels"].get("op") == op and e["name"].startswith("memo_db_")
            }
            for field_name, value in expected.items():
                assert got[f"memo_db_{field_name}"] == value, (op, field_name)
        merged = MemoDBStats.merged(per_op).as_dict()
        got_all = {
            e["name"]: e["value"]
            for e in snapshot
            if e["labels"].get("op") == "all" and e["name"].startswith("memo_db_")
        }
        for field_name, value in merged.items():
            assert got_all[f"memo_db_{field_name}"] == value

    def test_chunk_counters_reconcile_with_case_counts(self, tcp_run):
        _solver, result = tcp_run
        counted: dict = {}
        for e in obs.snapshot():
            if e["name"] == "memo_chunks_total":
                case = e["labels"]["case"]
                counted[case] = counted.get(case, 0) + int(e["value"])
        assert counted == dict(result.case_counts)

    def test_dump_meta_reports_no_drops_at_quick_scale(self, tcp_run, tmp_path):
        path = tmp_path / "run.jsonl"
        dump_jsonl(str(path))
        data = load_jsonl(str(path))
        assert data["meta"]["dropped_spans"] == 0
        assert any(s["name"] == "usfft.fft" for s in data["spans"])


class TestPipelinedTier:
    def test_pipeline_and_queue_metrics_appear(self, tiny_geometry, tiny_ops,
                                               tiny_data):
        cfg = MLRConfig(
            chunk_size=4,
            memo=memo_cfg(),
            pipeline=PipelineConfig(queue_depth=2),
            obs=ObsConfig(),
        )
        solver = MLRSolver(tiny_geometry, cfg, admm=ADMM, ops=tiny_ops)
        solver.reconstruct(tiny_data)
        snapshot = obs.snapshot()
        names = {e["name"] for e in snapshot}
        assert "pipeline_queue_depth" in names
        assert "pipeline_sweeps" in names
        assert "pipeline_items" in names
        # per-op cumulative totals match the executor's own stats
        agg = solver.executor.pipeline_stats()
        total_items = sum(
            e["value"]
            for e in snapshot
            if e["name"] == "pipeline_items" and "op" in e["labels"]
        )
        assert total_items == agg.items
        spans, _ = obs.drain_spans()
        stage_names = {rec["name"] for rec in spans}
        assert {"pipeline.run", "pipeline.reader", "pipeline.writer",
                "pipeline.compute"} <= stage_names
        solver.close()


class TestSchedulerTier:
    def test_job_spans_and_scheduler_gauges(self, tiny_geometry, tiny_data):
        from repro.service import JobSpec, ReconstructionScheduler, ServiceConfig

        obs.configure(ObsConfig())
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            job = sched.submit(
                JobSpec("obs-job", tiny_geometry, tiny_data,
                        config=MLRConfig(chunk_size=4, memo=memo_cfg()),
                        admm=ADMM)
            )
            job.wait()
        spans, _ = obs.drain_spans()
        runs = [r for r in spans if r["name"] == "job.run"]
        assert len(runs) == 1
        assert runs[0]["attrs"]["job"] == "obs-job"
        names = {e["name"] for e in obs.snapshot()}
        assert "scheduler_queue_depth" in names
        assert "scheduler_running" in names
        assert "scheduler_completed" in names

    def test_job_events_carry_monotonic_and_wall_clocks(self, tiny_geometry,
                                                        tiny_data):
        import time

        from repro.service import JobSpec, ReconstructionScheduler, ServiceConfig

        wall_before = time.time()
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            job = sched.submit(
                JobSpec("clock-job", tiny_geometry, tiny_data,
                        config=MLRConfig(chunk_size=4, memo=memo_cfg()),
                        admm=ADMM)
            )
            job.wait()
        wall_after = time.time()
        kinds = [ev.kind for ev in job.events]
        assert kinds[0] == "submitted" and "done" in kinds
        ts = [ev.t for ev in job.events]
        assert ts == sorted(ts)  # durations come from the monotonic clock
        for ev in job.events:
            assert wall_before <= ev.wall <= wall_after  # display-only wall
