"""obs-suite fixtures: every test starts from a pristine runtime."""

from __future__ import annotations

import pytest

from repro.obs import ObsConfig
from repro.obs import runtime as obs


@pytest.fixture(autouse=True)
def pristine_obs():
    """Fresh registry/collector per test, restored to the env gate after."""
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def enabled():
    """Observability on (default config); returns the runtime module."""
    obs.configure(ObsConfig())
    return obs


@pytest.fixture()
def disabled():
    """Observability explicitly off; returns the runtime module."""
    obs.configure(ObsConfig(enabled=False))
    return obs
