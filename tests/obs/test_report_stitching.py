"""Multi-dump stitching: ``merge_dumps`` + ``build_trace`` units.

Synthetic span records (hand-built, no daemon) pin the stitching rules
the distributed-tracing suite exercises end-to-end: name-path
aggregation, cross-process edges, orphan accounting, the hop table's
client-minus-server arithmetic, and the CLI's multi-path merge.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.export import DUMP_VERSION
from repro.obs.report import build_report, build_trace, merge_dumps, render_report


def span(sid, name, parent=None, trace=1, dur=0.01, proc="p1", attrs=None,
         error=None):
    rec = {
        "name": name, "t0": 0.0, "dur_s": dur, "span_id": sid,
        "parent_id": parent, "trace_id": trace, "proc": proc, "thread": "t",
    }
    if attrs:
        rec["attrs"] = attrs
    if error:
        rec["error"] = error
    return rec


def dump(spans, metrics=(), dropped=0):
    return {
        "meta": {"version": DUMP_VERSION, "dropped_spans": dropped},
        "metrics": list(metrics),
        "spans": list(spans),
    }


class TestMergeDumps:
    def test_concatenates_and_sums(self):
        a = dump([span(1, "x")], metrics=[{"name": "m", "kind": "counter",
                                           "labels": {}, "value": 1}], dropped=2)
        b = dump([span(2, "y")], dropped=3)
        merged = merge_dumps([a, b])
        assert [s["name"] for s in merged["spans"]] == ["x", "y"]
        assert len(merged["metrics"]) == 1
        assert merged["meta"]["dropped_spans"] == 5
        assert merged["meta"]["merged_dumps"] == 2


class TestBuildTrace:
    def test_pre_trace_dump_returns_none(self):
        assert build_trace([]) is None
        assert build_trace([{"name": "old", "dur_s": 0.1}]) is None

    def test_name_path_aggregation(self):
        spans = [
            span(1, "root"),
            span(2, "child", parent=1), span(3, "child", parent=1),
            span(4, "leaf", parent=2),
        ]
        trace = build_trace(spans)
        assert trace["traces"] == 1 and trace["orphans"] == 0
        rows = {tuple(r["path"]): r for r in trace["tree"]}
        assert rows[("root", "child")]["count"] == 2  # same path, one row
        assert rows[("root", "child", "leaf")]["depth"] == 2

    def test_cross_process_edge_counts_both_procs(self):
        spans = [
            span(1, "net_client.request", proc="client-proc"),
            span(2, "net_server.request", parent=1, proc="server-proc"),
        ]
        trace = build_trace(spans)
        assert trace["procs"] == 2
        row = next(r for r in trace["tree"] if r["name"] == "net_server.request")
        assert row["path"] == ["net_client.request", "net_server.request"]
        assert row["procs"] == ["server-proc"]

    def test_missing_parent_roots_chain_and_counts_orphan(self):
        spans = [span(5, "stranded", parent=999)]
        trace = build_trace(spans)
        assert trace["orphans"] == 1
        assert trace["tree"][0]["path"] == ["stranded"]  # rooted where cut

    def test_cycle_guard_terminates(self):
        spans = [span(1, "a", parent=2), span(2, "b", parent=1)]
        trace = build_trace(spans)  # corrupt dump must not hang
        assert trace is not None and len(trace["tree"]) == 2

    def test_errors_counted(self):
        spans = [span(1, "ok"), span(2, "boom", parent=1, error="ValueError: x")]
        trace = build_trace(spans)
        assert trace["errors"] == 1
        row = next(r for r in trace["tree"] if r["name"] == "boom")
        assert row["errors"] == 1

    def test_hop_table_subtracts_server_from_client(self):
        spans = [
            span(1, "net_client.request", dur=0.010),
            span(2, "net_server.request", parent=1, dur=0.004,
                 attrs={"type": "query_batch"}),
            span(3, "net_client.request", dur=0.001, attrs={"pipelined": True}),
            span(4, "net_server.request", parent=3, dur=0.006,
                 attrs={"type": "insert_batch"}),
        ]
        hops = {h["type"]: h for h in build_trace(spans)["hops"]}
        assert hops["query_batch"]["wire_mean_s"] == pytest.approx(0.006)
        # pipelined: client span closed at transmit, floor at zero
        assert hops["insert_batch"]["wire_mean_s"] == 0.0

    def test_shard_table_groups_by_shard(self):
        spans = [
            span(1, "net_server.shard", dur=0.2, attrs={"shard": 0}),
            span(2, "net_server.shard", dur=0.4, attrs={"shard": 0}),
            span(3, "net_server.shard", dur=0.1, attrs={"shard": 1}),
        ]
        shards = {s["shard"]: s for s in build_trace(spans)["shards"]}
        assert shards["0"]["count"] == 2
        assert shards["0"]["mean_s"] == pytest.approx(0.3)


class TestRender:
    def test_sections_render(self):
        spans = [
            span(1, "solver.reconstruct"),
            span(2, "net_client.request", parent=1),
            span(3, "net_server.request", parent=2, proc="p2",
                 attrs={"type": "query_batch"}),
            span(4, "net_server.shard", parent=3, proc="p2",
                 attrs={"shard": 0}),
            span(9, "lost", parent=999),
        ]
        text = render_report(build_report(dump(spans)))
        assert "trace tree (1 traces, 2 processes, 1 orphaned spans)" in text
        assert "    net_server.request" in text  # depth-2 indent
        assert "wire hops" in text and "query_batch" in text
        assert "server shards" in text


class TestCliMerge:
    def test_report_merges_multiple_dumps(self, enabled, tmp_path, capsys):
        a = tmp_path / "client.jsonl"
        b = tmp_path / "server.jsonl"
        # one dump per process: meta line then span lines
        for path, spans in (
            (a, [span(1, "net_client.request", proc="c")]),
            (b, [span(2, "net_server.request", parent=1, proc="s")]),
        ):
            meta = {"rec": "meta", "version": DUMP_VERSION, "dropped_spans": 0}
            lines = [json.dumps(meta)]
            for s in spans:
                lines.append(json.dumps({"rec": "span", **s}))
            path.write_text("\n".join(lines) + "\n")
        assert obs_main(["report", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "2 processes" in out
        assert "net_server.request" in out
