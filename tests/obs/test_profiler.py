"""Span-attributed sampling profiler.

Acceptance property: on a run doing its work inside named spans, at least
90% of the sampled non-idle self-time lands on span buckets — blocked
service threads (accept loops, condition waits) classify as idle, not as
unattributed "other" noise.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.obs as obs
from repro.obs import ObsConfig
from repro.obs.export import dump_lines
from repro.obs.profiler import SamplingProfiler
from repro.obs.report import render_report
from repro.obs.spans import active_span_path


def _busy(seconds: float) -> None:
    deadline = time.time() + seconds
    while time.time() < deadline:
        sum(i * i for i in range(2000))


class TestAttribution:
    def test_span_fraction_dominates_on_pipelined_work(self, enabled):
        """Worker threads each burning CPU inside named spans, plus one
        thread parked on an Event (a stand-in for a blocked server
        handler): >= 90% of non-idle samples must be span-attributed."""
        stop = threading.Event()
        parked = threading.Thread(target=stop.wait, daemon=True)
        parked.start()

        def work(name: str) -> None:
            with obs.span(name):
                _busy(0.6)

        workers = [
            threading.Thread(target=work, args=(f"sweep.op{i}",), daemon=True)
            for i in range(2)
        ]
        prof = SamplingProfiler(hz=200.0)
        with prof:
            for t in workers:
                t.start()
            for t in workers:
                t.join()
        stop.set()
        parked.join()

        snap = prof.snapshot()
        assert snap["ticks"] > 0 and snap["samples"] > 0
        assert snap["span_fraction"] >= 0.9, snap
        span_names = {b["name"] for b in snap["buckets"] if b["kind"] == "span"}
        assert {"sweep.op0", "sweep.op1"} <= span_names

    def test_nested_spans_attribute_to_path(self, enabled):
        prof = SamplingProfiler(hz=200.0)
        with prof:
            with obs.span("outer"):
                with obs.span("inner"):
                    _busy(0.4)
        paths = [b["name"] for b in prof.snapshot()["buckets"] if b["kind"] == "span"]
        assert any(p == "outer/inner" for p in paths), paths

    def test_thread_span_registry_tracks_enter_exit(self, enabled):
        ident = threading.get_ident()
        assert active_span_path(ident) is None
        with obs.span("a"):
            with obs.span("b"):
                assert active_span_path(ident) == "a/b"
            assert active_span_path(ident) == "a"
        assert active_span_path(ident) is None

    def test_self_time_scales_with_rate(self, enabled):
        prof = SamplingProfiler(hz=100.0)
        with prof:
            with obs.span("only"):
                _busy(0.3)
        snap = prof.snapshot()
        bucket = next(b for b in snap["buckets"] if b["kind"] == "span")
        # each sample is worth 1/hz seconds of self-time
        assert bucket["self_s"] == pytest.approx(bucket["samples"] / 100.0)


class TestLifecycle:
    def test_start_stop_and_double_start_raises(self, enabled):
        prof = SamplingProfiler(hz=50.0)
        prof.start()
        assert prof.running
        with pytest.raises(RuntimeError):
            prof.start()
        prof.stop()
        assert not prof.running
        prof.stop()  # idempotent

    def test_runtime_owns_profiler_via_config(self):
        obs.configure(ObsConfig(enabled=True, profile_hz=31.0))
        prof = obs.profiler()
        assert prof is not None and prof.running
        assert obs.profile_snapshot()["hz"] == 31.0
        obs.reset()
        assert obs.profiler() is None
        assert obs.profile_snapshot() is None
        assert not prof.running

    def test_zero_hz_means_no_profiler_thread(self):
        obs.configure(ObsConfig(enabled=True, profile_hz=0.0))
        assert obs.profiler() is None
        before = threading.active_count()
        obs.configure(ObsConfig(enabled=True, profile_hz=0.0))
        assert threading.active_count() == before


class TestExport:
    def test_live_dump_carries_profile_record_and_renders(self, tmp_path):
        obs.configure(ObsConfig(enabled=True, profile_hz=100.0))
        with obs.span("hot"):
            _busy(0.3)
        lines = dump_lines()
        profile_lines = [ln for ln in lines if '"rec": "profile"' in ln]
        assert len(profile_lines) == 1

        path = tmp_path / "dump.jsonl"
        path.write_text("\n".join(lines) + "\n")
        data = obs.load_jsonl(path)
        assert data["profile"]["samples"] > 0
        text = render_report(obs.build_report(data), include_profile=True)
        assert "hot" in text and "span" in text

    def test_report_without_profile_explains_how_to_get_one(self, enabled):
        text = render_report(
            obs.build_report({"meta": {}, "metrics": [], "spans": []}),
            include_profile=True,
        )
        assert "REPRO_OBS_PROFILE_HZ" in text
