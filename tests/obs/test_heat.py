"""Memo-tier heat analytics: per-entry last-hit/hit-count metadata.

Satellite contract: heat survives ``state_dict``/``from_state`` round
trips, partition-level absorb merges take max(last-hit) / sum(hits), and
a pre-heat-schema snapshot loads with zeroed heat fields.  Acceptance:
the heat report's projected-reclaimable-bytes matches an independent
ground-truth recount of the per-entry metadata.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MemoConfig
from repro.core.memo_shard import ShardInsert
from repro.kvstore import store as store_mod
from repro.kvstore.store import KVStore, merge_heat_states
from repro.net.server import MemoServerDaemon
from repro.obs.export import to_prometheus
from repro.obs.heat import (
    age_histogram_entries,
    build_heat_report,
    entry_records,
    entry_records_from_store,
    render_heat_report,
)
from repro.service.scheduler import SharedMemoService


@pytest.fixture()
def clock(monkeypatch):
    """Deterministic heat clock: advance with ``clock["now"] = t``."""
    state = {"now": 1000.0}
    monkeypatch.setattr(store_mod, "_heat_clock", lambda: state["now"])
    return state


class TestStoreHeat:
    def test_hits_refresh_and_count(self, clock):
        s = KVStore()
        s.put("k", b"abc")
        assert s.heat("k") == (1000.0, 0)
        clock["now"] = 1500.0
        s.get("k")
        s.get("k")
        assert s.heat("k") == (1500.0, 2)
        assert s.get("missing") is None  # a miss touches nothing
        assert s.heat("missing") is None

    def test_roundtrip_through_state_dict(self, clock):
        s = KVStore()
        s.put("a", b"xx")
        s.put(7, b"yyyy")
        clock["now"] = 1200.0
        s.get("a")
        restored = KVStore.from_state(s.state_dict())
        assert restored.heat("a") == (1200.0, 1)
        assert restored.heat(7) == (1000.0, 0)
        # restored stores keep accounting heat identically
        clock["now"] = 1300.0
        restored.get(7)
        assert restored.heat(7) == (1300.0, 1)

    def test_pre_heat_snapshot_loads_zeroed(self, clock):
        s = KVStore()
        s.put("a", b"xx")
        s.get("a")
        state = s.state_dict()
        del state["heat_last"], state["heat_hits"]  # pre-heat schema
        restored = KVStore.from_state(state)
        assert restored.heat("a") == (0.0, 0)  # maximally cold, never lossy

    def test_overwrite_resets_heat(self, clock):
        s = KVStore()
        s.put("a", b"old")
        s.get("a")
        clock["now"] = 2000.0
        s.put("a", b"new")
        assert s.heat("a") == (2000.0, 0)

    def test_merge_heat_takes_max_last_and_sums_hits(self, clock):
        ours, theirs = KVStore(), KVStore()
        for s in (ours, theirs):
            s.put("shared", b"v")
            s.put(f"only-{id(s)}", b"w")
        ours.get("shared")  # ours: (1000, 1)
        clock["now"] = 3000.0
        theirs.get("shared")
        theirs.get("shared")  # theirs: (3000, 2)
        ours.merge_heat(theirs)
        assert ours.heat("shared") == (3000.0, 3)

    def test_merge_heat_states_on_state_trees(self, clock):
        a, b = KVStore(), KVStore()
        a.put("k", b"v")
        b.put("k", b"v")
        a.get("k")
        clock["now"] = 5000.0
        b.get("k")
        new_state, old_state = b.state_dict(), a.state_dict()
        merge_heat_states(new_state, old_state)
        restored = KVStore.from_state(new_state)
        assert restored.heat("k") == (5000.0, 2)
        # pre-heat old side contributes nothing but must not fail
        bare = a.state_dict()
        del bare["heat_last"], bare["heat_hits"]
        merge_heat_states(new_state, bare)
        assert KVStore.from_state(new_state).heat("k") == (5000.0, 2)


MEMO = MemoConfig(index_train_min=4, index_clusters=2, index_nprobe=2)


def _items(rng, n, op="Fu1D"):
    out = []
    for i in range(n):
        key = rng.normal(size=12).astype(np.float32)
        val = (rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))).astype(
            np.complex64
        )
        out.append(ShardInsert(op, i, key, val, meta=(1.0, 0j)))
    return out


class TestAbsorbMerges:
    def test_daemon_push_merges_partition_heat(self, clock):
        """A pushed partition wins wholesale, but for keys both sides hold
        the installed db keeps max(last-hit) and summed hits."""
        rng = np.random.default_rng(3)
        items = _items(rng, 4)
        with MemoServerDaemon(n_shards=2, memo=MEMO) as daemon:
            daemon.serve_insert_batch(items)
            tree = daemon.pull_state()  # both sides now share entry ids
            # make the live tier hot at t=2000
            clock["now"] = 2000.0
            from repro.core.memo_shard import ShardQuery

            daemon.serve_query_batch(
                [ShardQuery(i.op, i.location, i.key) for i in items]
            )
            before = entry_records(daemon.pull_state())
            assert sum(r["hits"] for r in before) == len(items)
            # push the cold pre-query tree back: entries must stay hot
            daemon.push_state(tree)
            after = entry_records(daemon.pull_state())
        assert sum(r["hits"] for r in after) == sum(r["hits"] for r in before)
        assert {r["last"] for r in after if r["hits"]} == {2000.0}

    def test_scheduler_merged_unions_heat_on_conflicts(self, clock):
        a, b = KVStore(), KVStore()
        a.put("k", b"v")
        b.put("k", b"v")
        a.get("k")  # old side hit at t=1000
        clock["now"] = 4000.0
        b.get("k")  # new side hit at t=4000
        old = {
            "layout": "single", "encoder": None,
            "partitions": [
                {"op": "Fu1D", "location": 0, "db": {"values": a.state_dict()}},
                {"op": "Fu1D", "location": 9, "db": {"values": a.state_dict()}},
            ],
        }
        new = {
            "layout": "single", "encoder": None,
            "partitions": [
                {"op": "Fu1D", "location": 0, "db": {"values": b.state_dict()}},
            ],
        }
        merged = SharedMemoService._merged(old, new)
        part = next(
            p for p in merged["partitions"] if int(p["location"]) == 0
        )
        restored = KVStore.from_state(part["db"]["values"])
        assert restored.heat("k") == (4000.0, 2)


class TestHeatReport:
    def _tree(self):
        return {
            "layout": "sharded",
            "n_shards": 2,
            "shards": [
                {"shard_id": 0, "partitions": [
                    {"op": "Fu1D", "location": 0, "db": {"values": {
                        "store_type": "bytes",
                        "keys": [["s", "a"], ["s", "b"]],
                        "vals": [b"x" * 10, b"y" * 30],
                        "heat_last": [9000.0, 1000.0],
                        "heat_hits": [4, 0],
                    }}},
                ]},
                {"shard_id": 1, "partitions": [
                    {"op": "Fu2D", "location": 3, "db": {"values": {
                        "store_type": "bytes",
                        "keys": [["s", "c"]],
                        "vals": [b"z" * 50],
                    }}},  # pre-heat partition: reads as maximally cold
                ]},
            ],
        }

    def test_reclaimable_bytes_matches_ground_truth_recount(self):
        records = entry_records(self._tree())
        now, cutoff = 10000.0, 3600.0
        report = build_heat_report(records, now=now, stale_after=cutoff)
        # independent recount straight off the per-entry metadata
        expected = sum(
            r["nbytes"] for r in records if now - r["last"] >= cutoff
        )
        assert report["reclaimable_bytes"] == expected == 30 + 50
        assert report["entries"] == 3 and report["nbytes"] == 90
        assert report["cold_entries"] == 2
        assert report["cold_fraction"] == pytest.approx(2 / 3)
        by_op = {g["op"]: g for g in report["by_op"]}
        assert by_op["Fu1D"]["reclaimable"] == 30
        assert by_op["Fu2D"]["reclaimable"] == 50
        text = render_heat_report(report)
        assert "projected reclaimable" in text and "by shard" in text

    def test_age_histograms_are_prometheus_renderable(self):
        records = entry_records(self._tree())
        entries = age_histogram_entries(records, now=10000.0)
        assert {e["labels"]["op"] for e in entries} == {"Fu1D", "Fu2D"}
        for e in entries:
            assert sum(e["counts"]) <= e["count"]  # overflow -> +Inf bucket
        text = to_prometheus(entries)
        assert 'memo_entry_age_seconds_bucket{le="+Inf",op="Fu1D",shard="0"} 2' in text

    def test_live_store_records_match_state_records(self, clock):
        s = KVStore()
        s.put("a", b"abc")
        s.get("a")
        live = entry_records_from_store(s, "Fu1D", 0, 5)
        via_state = list(
            entry_records({
                "layout": "single",
                "partitions": [{"op": "Fu1D", "location": 5,
                                "db": {"values": s.state_dict()}}],
            })
        )
        assert live == via_state

    def test_rejects_non_tree(self):
        with pytest.raises(ValueError, match="layout"):
            entry_records({"partitions": []})
