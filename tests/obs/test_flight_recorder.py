"""Black-box flight recorder.

The span rings double as an always-on bounded flight recorder: on a
fault — job failure, snapshot quarantine, circuit-breaker open —
``obs.flight_dump()`` writes the recent spans plus a full metrics
snapshot to a JSONL artifact (the exact format ``python -m repro.obs
report`` stitches), so a chaos failure ships its own evidence.  These
tests cover the dump mechanics (peek-not-drain, meta block, counter,
never-raises) and the three production trigger points.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core import MLRConfig, MemoConfig, ObsConfig
from repro.core.memo_shard import ShardQuery
from repro.lamino import LaminoGeometry
from repro.net import MemoServerDaemon
from repro.net.policy import RetryPolicy
from repro.net.replicated import ReplicatedMemoClient
from repro.obs import runtime as obs
from repro.obs.report import report_from_file
from repro.service import JobSpec, JobState, ReconstructionScheduler, ServiceConfig
from repro.solvers import ADMMConfig


def flight_files(root) -> list[str]:
    return sorted(
        str(p) for p in os.listdir(root) if str(p).startswith("flight-")
    )


class TestDumpMechanics:
    def test_dump_writes_report_compatible_artifact(self, tmp_path):
        obs.configure(ObsConfig(flight_dir=str(tmp_path)))
        with obs.span("doomed.op", stage=3):
            pass
        obs.counter("witness_total").inc(7)
        path = obs.flight_dump("unit-test", job="j1", attempts=2)
        assert path is not None and os.path.isfile(path)
        base = os.path.basename(path)
        assert base.startswith("flight-unit-test-") and base.endswith(".jsonl")
        with open(path, encoding="utf-8") as fh:
            lines = [json.loads(l) for l in fh if l.strip()]
        meta = lines[0]
        assert meta["flight"]["reason"] == "unit-test"
        assert meta["flight"]["attrs"] == {"job": "j1", "attempts": 2}
        assert meta["flight"]["unix"] > 0
        names = {r.get("name") for r in lines[1:]}
        assert "doomed.op" in names and "witness_total" in names
        # the artifact is the report's native input
        text = report_from_file(path)
        assert "doomed.op" in text
        # and the recorder counts itself
        dumps = [
            e for e in obs.snapshot() if e["name"] == "flight_dumps_total"
        ]
        assert dumps and dumps[0]["labels"] == {"reason": "unit-test"}

    def test_dump_peeks_spans_without_draining(self, tmp_path):
        obs.configure(ObsConfig(flight_dir=str(tmp_path)))
        with obs.span("kept.op"):
            pass
        assert obs.flight_dump("peek") is not None
        spans, _ = obs.drain_spans()
        # the dump did not consume them: live tracing is undisturbed
        assert [s["name"] for s in spans] == ["kept.op"]

    def test_no_dir_means_no_recorder(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
        obs.configure(ObsConfig())
        assert obs.flight_dir() is None
        assert obs.flight_dump("nowhere") is None

    def test_disabled_obs_means_no_recorder(self, tmp_path):
        obs.configure(ObsConfig(enabled=False, flight_dir=str(tmp_path)))
        assert obs.flight_dir() is None
        assert obs.flight_dump("dark") is None
        assert flight_files(tmp_path) == []

    def test_env_var_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        obs.configure(ObsConfig())
        assert obs.flight_dir() == str(tmp_path)
        assert obs.flight_dump("env-test") is not None
        assert len(flight_files(tmp_path)) == 1

    def test_unwritable_dir_never_raises(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        obs.configure(ObsConfig(flight_dir=str(blocker)))
        assert obs.flight_dump("full-disk") is None  # logged, swallowed


class TestProductionTriggers:
    def test_job_failure_dumps_flight(self, tmp_path):
        obs.configure(ObsConfig(flight_dir=str(tmp_path)))
        n = 12
        geometry = LaminoGeometry(
            (n, n, n), n_angles=8, det_shape=(n, n), tilt_deg=61.0
        )

        def doomed() -> np.ndarray:
            raise OSError("scan volume unavailable")

        spec = JobSpec(
            name="doomed", geometry=geometry, projections=doomed,
            config=MLRConfig(
                chunk_size=4,
                memo=MemoConfig(tau=0.9, warmup_iterations=1,
                                index_train_min=8, index_clusters=4,
                                index_nprobe=2),
            ),
            admm=ADMMConfig(n_outer=2, n_inner=2, step_max_rel=4.0),
            max_retries=1,
        )
        with ReconstructionScheduler(ServiceConfig(n_workers=1)) as sched:
            handle = sched.submit(spec)
            assert handle.wait(120.0)
        assert handle.state is JobState.FAILED
        files = flight_files(tmp_path)
        assert len(files) == 1 and files[0].startswith("flight-job-failure-")
        with open(tmp_path / files[0], encoding="utf-8") as fh:
            meta = json.loads(fh.readline())
        assert meta["flight"]["attrs"]["job"] == "doomed"
        assert meta["flight"]["attrs"]["attempts"] == 2  # original + 1 retry
        assert "OSError" in meta["flight"]["attrs"]["error"]

    def test_circuit_breaker_open_dumps_flight(self, tmp_path):
        obs.configure(ObsConfig(flight_dir=str(tmp_path)))
        with MemoServerDaemon(n_shards=1, name="victim") as d:
            address = d.address
        # daemon closed: next contact trips the breaker immediately
        rc = ReplicatedMemoClient(
            [address], client_name="breaker",
            retry_policy=RetryPolicy(failure_threshold=1, reset_timeout_s=30.0),
        )
        try:
            key = np.zeros(8, np.float32)
            rc.query_batch([ShardQuery("Fu1D", 0, key)])
        finally:
            rc.close()
        files = flight_files(tmp_path)
        assert files and files[0].startswith("flight-circuit-open-")
        with open(tmp_path / files[0], encoding="utf-8") as fh:
            meta = json.loads(fh.readline())
        attrs = meta["flight"]["attrs"]
        assert attrs["replica"] == f"{address[0]}:{address[1]}"
        assert attrs["client"] == "breaker"
        assert attrs["error"]

    def test_breaker_reopen_does_not_redump(self, tmp_path):
        """The dump fires on the closed->open *edge*, not on every failure
        while open — a flapping replica must not flood the artifact dir."""
        obs.configure(ObsConfig(flight_dir=str(tmp_path)))
        with MemoServerDaemon(n_shards=1, name="victim") as d:
            address = d.address
        rc = ReplicatedMemoClient(
            [address], client_name="flap",
            retry_policy=RetryPolicy(failure_threshold=1, reset_timeout_s=30.0),
        )
        try:
            key = np.zeros(8, np.float32)
            for _ in range(5):  # breaker stays open: calls degrade silently
                rc.query_batch([ShardQuery("Fu1D", 0, key)])
        finally:
            rc.close()
        assert len(flight_files(tmp_path)) == 1  # one trip, one artifact
