"""Cross-process distributed tracing acceptance.

The PR's headline contracts:

- every ``net_server.request`` handler span (and its ``net_server.shard``
  children) parents under the ``net_client.request`` span that issued it,
  across the wire, under one trace id — including through reconnects,
  pipelined insert-ack drains, and replica failover,
- ``MSG_TRACE_PULL`` drains a daemon's span rings remotely, and merging
  that dump with the local one stitches a genuinely cross-*process* tree
  (exercised against a ``python -m repro.net.server`` subprocess),
- a full TCP reconstruction yields one stitched tree rooted at
  ``solver.reconstruct`` with a per-hop wire-cost table,
- tracing off is invisible: no trace field on any frame, and the
  reconstruction is bit-identical with observability on and off.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import MLRConfig, MLRSolver, MemoConfig, ObsConfig
from repro.core.memo_shard import ShardInsert, ShardQuery
from repro.faults import FaultPlan, FaultRule
from repro.faults import runtime as faults
from repro.net import MemoServerDaemon
from repro.net.client import RemoteMemoClient
from repro.net.replicated import ReplicatedMemoClient
from repro.obs import runtime as obs
from repro.obs.report import build_report, build_trace, merge_dumps, render_report
from repro.solvers import ADMMConfig

ADMM = ADMMConfig(n_outer=5, n_inner=2, step_max_rel=4.0)


def memo_cfg(**over) -> MemoConfig:
    base = dict(tau=0.92, warmup_iterations=1, index_train_min=4,
                index_clusters=2, index_nprobe=2)
    base.update(over)
    return MemoConfig(**base)


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faults.uninstall()
    yield
    faults.uninstall()


def key(seed: int, n: int = 8) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=n).astype(np.float32)


def insert(loc: int, seed: int = 0) -> ShardInsert:
    return ShardInsert("Fu1D", loc, key(seed), np.zeros(4, np.float32))


def query(loc: int, seed: int = 0) -> ShardQuery:
    return ShardQuery("Fu1D", loc, key(seed))


def by_name(spans, name):
    return [s for s in spans if s["name"] == name]


class TestSpanPropagation:
    def test_server_spans_parent_under_client_requests(self, enabled):
        with MemoServerDaemon(n_shards=2, name="traced") as d:
            with RemoteMemoClient(d.address, client_name="tc") as c:
                with obs.span("root.op"):
                    c.insert_batch([insert(0), insert(3, seed=1)])
                    c.query_batch([query(0), query(3)])
                    c.flush()
        spans, dropped = obs.drain_spans()
        assert dropped == 0
        root = by_name(spans, "root.op")[0]
        client_ids = {s["span_id"] for s in by_name(spans, "net_client.request")}
        servers = by_name(spans, "net_server.request")
        assert servers, "no handler spans recorded"
        for s in servers:
            # the handler thread has no ambient context: its parent can
            # only have arrived through the wire's trace field
            assert s["parent_id"] in client_ids
            assert s["trace_id"] == root["trace_id"]
        # client request spans parent under the caller's root span
        for s in by_name(spans, "net_client.request"):
            assert s["parent_id"] == root["span_id"]
        # shard work parents under its handler span (contextvars copied
        # onto the pool thread per submission)
        server_ids = {s["span_id"] for s in servers}
        shards = by_name(spans, "net_server.shard")
        assert shards
        for s in shards:
            assert s["parent_id"] in server_ids
            assert s["trace_id"] == root["trace_id"]

    def test_pipelined_insert_acks_drain_stitched(self, enabled):
        """Fire-and-forget inserts: the client span closes at transmit,
        the acks drain under a later request — every handler span still
        stitches under the pipelined span that sent it."""
        with MemoServerDaemon(n_shards=2, name="pipelined") as d:
            with RemoteMemoClient(d.address, client_name="pc", max_inflight=8) as c:
                with obs.span("root.op"):
                    for i in range(6):
                        c.insert_batch([insert(i, seed=i)])
                    c.query_batch([query(0)])  # drains pending acks en route
                    c.flush()
        spans, _ = obs.drain_spans()
        pipelined = [
            s for s in by_name(spans, "net_client.request")
            if (s.get("attrs") or {}).get("pipelined")
        ]
        assert len(pipelined) == 6
        pipelined_ids = {s["span_id"] for s in pipelined}
        handled = [
            s for s in by_name(spans, "net_server.request")
            if (s.get("attrs") or {}).get("type") == "insert_batch"
        ]
        assert len(handled) == 6
        assert {s["parent_id"] for s in handled} == pipelined_ids

    def test_trace_field_gating(self, enabled):
        with MemoServerDaemon(n_shards=1, name="gated") as d:
            with RemoteMemoClient(d.address, client_name="gc") as c:
                # no open span: nothing to parent under
                assert c._trace_field_locked() is None
                with obs.span("root.op"):
                    field = c._trace_field_locked()
                    assert isinstance(field, dict)
                    assert set(field) == {"tid", "sid"}
                    # an old server (no feature advert) never sees the key
                    stripped = {
                        k: v for k, v in c.server_info.items() if k != "features"
                    }
                    c.server_info = stripped
                    assert c._trace_field_locked() is None

    def test_disabled_attaches_nothing(self, disabled):
        with MemoServerDaemon(n_shards=1, name="dark") as d:
            with RemoteMemoClient(d.address, client_name="dc") as c:
                with obs.span("root.op"):  # the shared null span
                    assert c._trace_field_locked() is None
                    c.query_batch([query(0)])
        spans, _ = obs.drain_spans()
        assert spans == []


class TestReconnectAndFailover:
    def test_stitching_survives_reconnect(self, enabled):
        """A dropped frame forces reconnect + retry; the retry attempt's
        request span still parents the server handler span."""
        plan = FaultPlan(77, (
            FaultRule("client:rc:send", "drop", prob=1.0, after=4, max_times=1),
        ))
        with MemoServerDaemon(n_shards=1, name="flaky") as d:
            with faults.injected_faults(plan):
                with RemoteMemoClient(d.address, client_name="rc") as c:
                    for _ in range(3):  # advance the send counter past `after`
                        c.ping()
                    with obs.span("root.op"):
                        outcomes = c.query_batch([query(0)])
                    assert len(outcomes) == 1
                    assert c.net_stats.connects >= 2  # it really reconnected
        spans, _ = obs.drain_spans()
        root = by_name(spans, "root.op")[0]
        attempts = [
            s for s in by_name(spans, "net_client.request")
            if (s.get("attrs") or {}).get("type") == "query_batch"
        ]
        assert any((s.get("attrs") or {}).get("attempt", 0) >= 2 for s in attempts)
        client_ids = {s["span_id"] for s in attempts}
        servers = [
            s for s in by_name(spans, "net_server.request")
            if (s.get("attrs") or {}).get("type") == "query_batch"
        ]
        assert servers
        for s in servers:
            assert s["parent_id"] in client_ids
            assert s["trace_id"] == root["trace_id"]

    def test_stitching_survives_failover(self, enabled):
        with MemoServerDaemon(n_shards=2, name="r0") as d0:
            with MemoServerDaemon(n_shards=2, name="r1") as d1:
                rc = ReplicatedMemoClient(
                    [d0.address, d1.address], client_name="failover"
                )
                try:
                    d0.close()  # preferred replica of shard 0 goes dark
                    with obs.span("root.op"):
                        outcomes = rc.query_batch([query(0), query(3)])
                    assert len(outcomes) == 2
                finally:
                    rc.close()
        spans, _ = obs.drain_spans()
        root = by_name(spans, "root.op")[0]
        client_ids = {s["span_id"] for s in by_name(spans, "net_client.request")}
        servers = by_name(spans, "net_server.request")
        assert servers  # the surviving replica answered
        for s in servers:
            assert s["parent_id"] in client_ids
            assert s["trace_id"] == root["trace_id"]


class TestTracePull:
    def test_pull_drains_once(self, enabled):
        with MemoServerDaemon(n_shards=1, name="drained") as d:
            with RemoteMemoClient(d.address, client_name="tp") as c:
                c.ping()
                first = c.trace_pull()
                assert first["server"] == "drained"
                assert first["obs_enabled"] is True
                first_ids = {s["span_id"] for s in first["spans"]}
                assert first_ids  # the ping handler span at minimum
                second = c.trace_pull()
                # drained, not copied: no span ships twice
                assert first_ids.isdisjoint(
                    {s["span_id"] for s in second["spans"]}
                )

    def test_pull_gated_on_feature_advert(self, enabled):
        with MemoServerDaemon(n_shards=1, name="old") as d:
            with RemoteMemoClient(d.address, client_name="og") as c:
                c.server_info = {
                    k: v for k, v in c.server_info.items() if k != "features"
                }
                # an old server would kill the connection on the unknown
                # message: the client must not even send it
                assert c.trace_pull() is None

    def test_replicated_pull_and_metrics_aggregate(self, enabled):
        with MemoServerDaemon(n_shards=2, name="ra") as d0, \
             MemoServerDaemon(n_shards=2, name="rb") as d1:
            rc = ReplicatedMemoClient(
                [d0.address, d1.address], client_name="agg"
            )
            try:
                rc.insert_batch([insert(0)])  # fans out to both replicas
                rc.query_batch([query(0)])
                rc.flush()
                m = rc.metrics()
                tags = {f"{h}:{p}" for h, p in rc.addresses}
                assert set(m["replicas"]) == tags
                assert m["obs_enabled"] is True
                assert m["metrics"]
                for entry in m["metrics"]:
                    assert entry["labels"]["replica"] in tags
                # both replicas saw the fanned-out insert
                for stats in m["replicas"].values():
                    assert stats["insert_batches"] >= 1
                pulled = rc.trace_pull()
                assert pulled is not None
                assert sorted(pulled["servers"]) == ["ra", "rb"]
                assert pulled["spans"]
            finally:
                rc.close()

    def test_replicated_metrics_fail_open_per_replica(self, enabled):
        with MemoServerDaemon(n_shards=2, name="live") as d0:
            with MemoServerDaemon(n_shards=2, name="dead") as d1:
                rc = ReplicatedMemoClient(
                    [d0.address, d1.address], client_name="半"
                )
            try:
                rc.query_batch([query(0)])
                m = rc.metrics()  # d1 is down: skipped, not fatal
                assert m is not None
                assert len(m["replicas"]) == 1
            finally:
                rc.close()


def _free_port() -> int:
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


class TestCrossProcess:
    def test_subprocess_server_dump_stitches(self, enabled, tmp_path):
        """The real thing: the daemon in its own process (own obs runtime,
        own pid), spans pulled over MSG_TRACE_PULL, merged with the local
        dump into one tree spanning two processes."""
        repo = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo, "src") + os.pathsep + env.get(
            "PYTHONPATH", "")
        env["REPRO_OBS"] = "1"
        port = _free_port()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.net.server",
             "--host", "127.0.0.1", "--port", str(port),
             "--shards", "2", "--tau", "0.92"],
            env=env, cwd=repo,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 20.0
            ready = False
            while time.monotonic() < deadline:
                try:
                    socket.create_connection(("127.0.0.1", port), timeout=1.0).close()
                    ready = True
                    break
                except OSError:
                    time.sleep(0.1)
            assert ready, "server subprocess never came up"
            client = RemoteMemoClient(
                ("127.0.0.1", port), expect_tau=0.92,
                fail_open=False, client_name="xproc",
            )
            with client:
                with obs.span("solver.reconstruct"):
                    client.insert_batch([insert(0), insert(3, seed=1)])
                    client.query_batch([query(0), query(3)])
                    client.flush()
                pulled = client.trace_pull()
        finally:
            proc.terminate()
            proc.wait(timeout=10)
        local_spans, dropped = obs.drain_spans()
        data = merge_dumps([
            {"meta": {"dropped_spans": dropped}, "metrics": obs.snapshot(),
             "spans": local_spans},
            {"meta": {}, "metrics": [], "spans": pulled["spans"]},
        ])
        trace = build_trace(data["spans"])
        assert trace["procs"] == 2  # genuinely two processes in one tree
        paths = {tuple(r["path"]) for r in trace["tree"]}
        assert ("solver.reconstruct", "net_client.request",
                "net_server.request") in paths
        assert ("solver.reconstruct", "net_client.request",
                "net_server.request", "net_server.shard") in paths
        # the server-side rows carry the *server's* proc tag
        local_proc = local_spans[0]["proc"]
        for row in trace["tree"]:
            if row["name"] == "net_server.request":
                assert row["procs"] and local_proc not in row["procs"]
        # and the report renders a hop table off the merged data
        text = render_report(build_report(data))
        assert "wire hops" in text and "query_batch" in text


class TestFullSolveStitched:
    def test_tcp_reconstruction_yields_one_stitched_tree(
        self, tiny_geometry, tiny_ops, tiny_data
    ):
        with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as srv:
            cfg = MLRConfig(
                chunk_size=4,
                memo=memo_cfg(transport="tcp", server_address=srv.address),
                obs=ObsConfig(),
            )
            solver = MLRSolver(tiny_geometry, cfg, admm=ADMM, ops=tiny_ops)
            try:
                solver.reconstruct(tiny_data)
            finally:
                solver.close()
            spans, _ = obs.drain_spans()
        roots = by_name(spans, "solver.reconstruct")
        assert len(roots) == 1
        trace_id = roots[0]["trace_id"]
        servers = by_name(spans, "net_server.request")
        assert servers, "TCP solve produced no handler spans"
        span_ids = {s["span_id"] for s in spans}
        by_id = {s["span_id"]: s for s in spans}
        client_ids = {s["span_id"] for s in by_name(spans, "net_client.request")}
        for s in servers:
            # every handler span stitches under the client request that
            # issued it and inherits that request's trace
            assert s["parent_id"] in client_ids
            assert s["trace_id"] == by_id[s["parent_id"]]["trace_id"]
        # the reconstruction's own requests (the bulk: teardown flushes
        # outside the root span start their own traces) land in one tree
        in_root = [s for s in servers if s["trace_id"] == trace_id]
        assert len(in_root) >= len(servers) // 2 and in_root
        trace = build_trace(spans)
        assert trace["orphans"] == 0
        assert all(s.get("parent_id") in span_ids
                   for s in spans if s.get("parent_id") is not None)
        # per-hop wire-cost table: client minus server per message type
        hop_types = {h["type"] for h in trace["hops"]}
        assert "query_batch" in hop_types
        for hop in trace["hops"]:
            assert hop["client_mean_s"] >= 0 and hop["wire_mean_s"] >= 0
        text = render_report(build_report(
            {"meta": {}, "metrics": obs.snapshot(), "spans": spans}))
        assert "wire hops" in text

    def test_faulted_tcp_run_still_fully_stitched(
        self, tiny_geometry, tiny_ops, tiny_data
    ):
        plan = FaultPlan(1234, (
            FaultRule("client:*:send", "drop", prob=0.05, after=4, max_times=2),
            FaultRule("client:*:recv", "drop", prob=0.03, after=4, max_times=2),
        ))
        with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as srv:
            cfg = MLRConfig(
                chunk_size=4,
                memo=memo_cfg(transport="tcp", server_address=srv.address),
                obs=ObsConfig(),
            )
            with faults.injected_faults(plan):
                solver = MLRSolver(tiny_geometry, cfg, admm=ADMM, ops=tiny_ops)
                try:
                    solver.reconstruct(tiny_data)
                finally:
                    solver.close()
            spans, _ = obs.drain_spans()
        trace = build_trace(spans)
        assert trace is not None and trace["orphans"] == 0
        client_ids = {s["span_id"] for s in by_name(spans, "net_client.request")}
        for s in by_name(spans, "net_server.request"):
            assert s["parent_id"] in client_ids


class TestBitIdentity:
    def test_tracing_on_off_is_bit_identical(
        self, tiny_geometry, tiny_ops, tiny_data
    ):
        """Observability must observe, never perturb: the same TCP
        reconstruction with tracing on and off produces identical values."""
        def run(obs_cfg):
            with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as srv:
                cfg = MLRConfig(
                    chunk_size=4,
                    memo=memo_cfg(transport="tcp", server_address=srv.address),
                    obs=obs_cfg,
                )
                solver = MLRSolver(tiny_geometry, cfg, admm=ADMM, ops=tiny_ops)
                try:
                    return solver.reconstruct(tiny_data)
                finally:
                    solver.close()

        ref = run(ObsConfig(enabled=False))
        traced = run(ObsConfig())
        np.testing.assert_array_equal(ref.u, traced.u)
