"""encode_array / decode_array round-trip hardening.

These payloads cross host boundaries on the memo wire protocol, so the
codec must be portable (explicit little-endian), shape-faithful (0-d,
Fortran order), and loud about the one dtype family that has no stable
byte representation (object arrays).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvstore.serialization import decode_array, encode_array, encoded_nbytes


class TestRoundTrip:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(12, dtype=np.float32).reshape(3, 4),
            np.arange(8, dtype=np.complex64) * (1 + 2j),
            np.array([], dtype=np.float64),
            np.zeros((0, 5), dtype=np.int32),
            np.array(True),
            np.arange(6, dtype=np.uint8),
        ],
    )
    def test_exact(self, arr):
        out = decode_array(encode_array(arr))
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == arr.dtype and out.shape == arr.shape

    def test_zero_d_keeps_shape(self):
        z = np.array(2.5 - 1j)
        out = decode_array(encode_array(z))
        assert out.shape == () and out.dtype == z.dtype
        assert out == z

    def test_fortran_order_roundtrips_c_contiguous(self):
        f = np.asfortranarray(np.arange(24, dtype=np.float32).reshape(4, 6))
        out = decode_array(encode_array(f))
        np.testing.assert_array_equal(out, f)
        assert out.flags["C_CONTIGUOUS"]

    def test_non_contiguous_view_roundtrips(self):
        base = np.arange(40, dtype=np.float64).reshape(5, 8)
        view = base[::2, 1::3]
        np.testing.assert_array_equal(decode_array(encode_array(view)), view)

    def test_big_endian_normalized_to_little(self):
        be = np.arange(7, dtype=">f8")
        raw = encode_array(be)
        out = decode_array(raw)
        assert out.dtype.str == "<f8"  # portable wire dtype
        np.testing.assert_array_equal(out, be.astype("<f8"))
        # byte-identical to encoding the native-LE equivalent
        assert raw == encode_array(be.astype("<f8"))

    def test_nbytes_prediction_matches(self):
        for arr in (np.zeros((3, 3), dtype=np.complex64), np.array(1.0)):
            assert len(encode_array(arr)) == encoded_nbytes(arr)


class TestRejection:
    def test_object_dtype_raises_typed_on_encode(self):
        with pytest.raises(TypeError, match="object dtype"):
            encode_array(np.array([object(), object()]))

    def test_object_dtype_string_refused_on_decode(self):
        # handcraft a frame that claims dtype 'O' — must never be decoded
        good = encode_array(np.arange(2, dtype=np.int64))
        assert b"<i8" in good
        evil = good.replace(b"<i8", b"|O8")
        with pytest.raises(ValueError):
            decode_array(evil)

    def test_truncations_raise_value_error(self):
        raw = encode_array(np.arange(10, dtype=np.float32))
        for cut in (0, 3, len(raw) // 2, len(raw) - 1):
            with pytest.raises(ValueError):
                decode_array(raw[:cut])

    def test_bad_magic_and_version(self):
        raw = bytearray(encode_array(np.arange(3)))
        bad_magic = bytes(b"XXXX") + bytes(raw[4:])
        with pytest.raises(ValueError, match="magic"):
            decode_array(bad_magic)
        raw[4] = 9  # version byte
        with pytest.raises(ValueError, match="version"):
            decode_array(bytes(raw))

    def test_undecodable_dtype_string(self):
        good = encode_array(np.arange(2, dtype=np.int64))
        with pytest.raises(ValueError):
            decode_array(good.replace(b"<i8", b"@@@"))
