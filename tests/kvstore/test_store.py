"""KV store semantics: eviction, stats, serialization round-trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kvstore import KVStore, decode_array, encode_array, encoded_nbytes


class TestPutGet:
    def test_roundtrip(self):
        kv = KVStore()
        kv.put("a", b"hello")
        assert kv.get("a") == b"hello"

    def test_miss_returns_none_and_counts(self):
        kv = KVStore()
        assert kv.get("nope") is None
        assert kv.stats.misses == 1

    def test_overwrite_replaces_bytes(self):
        kv = KVStore()
        kv.put("k", b"xxxx")
        kv.put("k", b"yy")
        assert kv.get("k") == b"yy"
        assert kv.nbytes == 2

    def test_non_bytes_rejected(self):
        kv = KVStore()
        with pytest.raises(TypeError):
            kv.put("k", 123)

    def test_delete(self):
        kv = KVStore()
        kv.put("k", b"v")
        assert kv.delete("k") is True
        assert kv.delete("k") is False
        assert kv.nbytes == 0

    def test_contains_and_len(self):
        kv = KVStore()
        kv.put(1, b"a")
        kv.put(2, b"b")
        assert 1 in kv and 3 not in kv
        assert len(kv) == 2

    def test_clear(self):
        kv = KVStore()
        kv.put("k", b"v")
        kv.clear()
        assert len(kv) == 0 and kv.nbytes == 0


class TestEviction:
    def test_fifo_evicts_oldest(self):
        kv = KVStore(capacity_bytes=10, eviction="fifo")
        kv.put("a", b"12345")
        kv.put("b", b"12345")
        kv.put("c", b"1")  # evicts a
        assert "a" not in kv and "b" in kv and "c" in kv
        assert kv.stats.evictions == 1

    def test_lru_protects_recently_used(self):
        kv = KVStore(capacity_bytes=10, eviction="lru")
        kv.put("a", b"12345")
        kv.put("b", b"12345")
        kv.get("a")  # refresh a
        kv.put("c", b"1")  # must evict b, not a
        assert "a" in kv and "b" not in kv

    def test_oversized_value_rejected(self):
        kv = KVStore(capacity_bytes=4)
        with pytest.raises(ValueError):
            kv.put("k", b"12345")

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            KVStore(eviction="random")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            KVStore(capacity_bytes=0)

    def test_nbytes_never_exceeds_capacity(self):
        kv = KVStore(capacity_bytes=16)
        for i in range(50):
            kv.put(i, bytes(i % 7 + 1))
            assert kv.nbytes <= 16


class TestOverwriteAccounting:
    """nbytes must equal the exact sum of live values through overwrites,
    including overwrites that trigger eviction under a capacity bound."""

    @staticmethod
    def _live_bytes(kv: KVStore) -> int:
        return sum(len(kv.get(k)) for k in kv.keys())

    def test_overwrite_grow_forces_eviction_and_stays_consistent(self):
        kv = KVStore(capacity_bytes=10, eviction="fifo")
        kv.put("a", b"1234")
        kv.put("b", b"1234")
        # growing "a" to 9 bytes must drop the old "a" (4) and evict "b"
        kv.put("a", b"123456789")
        assert "b" not in kv and "a" in kv
        assert kv.nbytes == 9 == self._live_bytes(kv)
        assert kv.stats.evictions == 1

    def test_overwrite_shrink_releases_bytes(self):
        kv = KVStore(capacity_bytes=10)
        kv.put("a", b"12345678")
        kv.put("a", b"12")
        assert kv.nbytes == 2 == self._live_bytes(kv)
        # the freed space is genuinely reusable without eviction
        kv.put("b", b"12345678")
        assert kv.stats.evictions == 0
        assert kv.nbytes == 10 == self._live_bytes(kv)

    def test_overwrite_same_size_is_neutral(self):
        kv = KVStore(capacity_bytes=8)
        kv.put("a", b"1234")
        kv.put("b", b"1234")
        kv.put("a", b"abcd")
        assert "b" in kv and kv.get("a") == b"abcd"
        assert kv.nbytes == 8 == self._live_bytes(kv)
        assert kv.stats.evictions == 0

    def test_overwrite_never_self_evicts_fresh_value(self):
        """Overwriting the only key with a capacity-sized value must not
        evict anything (the old bytes are released first)."""
        kv = KVStore(capacity_bytes=8)
        kv.put("a", b"12345678")
        kv.put("a", b"abcdefgh")
        assert kv.get("a") == b"abcdefgh"
        assert kv.nbytes == 8 == self._live_bytes(kv)
        assert kv.stats.evictions == 0

    def test_delete_after_overwrite_accounting(self):
        kv = KVStore(capacity_bytes=20)
        kv.put("a", b"123")
        kv.put("a", b"1234567")
        assert kv.delete("a") is True
        assert kv.nbytes == 0 and len(kv) == 0


class TestStats:
    def test_hit_rate(self):
        kv = KVStore()
        kv.put("k", b"v")
        kv.get("k")
        kv.get("k")
        kv.get("missing")
        assert kv.stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_hit_rate_zero(self):
        assert KVStore().stats.hit_rate == 0.0

    def test_byte_accounting(self):
        kv = KVStore()
        kv.put("k", b"abcd")
        kv.get("k")
        assert kv.stats.bytes_in == 4
        assert kv.stats.bytes_out == 4


class TestSerialization:
    @given(
        arr=hnp.arrays(
            dtype=st.sampled_from([np.float32, np.complex64, np.int32, np.float64]),
            shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=6),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_any_array(self, arr):
        out = decode_array(encode_array(arr))
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        np.testing.assert_array_equal(out, arr)

    def test_noncontiguous_input(self, rng):
        a = rng.standard_normal((6, 6))[::2, ::2]
        np.testing.assert_array_equal(decode_array(encode_array(a)), a)

    def test_encoded_nbytes_matches(self, rng):
        a = (rng.standard_normal((4, 5)) + 1j * rng.standard_normal((4, 5))).astype(
            np.complex64
        )
        assert encoded_nbytes(a) == len(encode_array(a))

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_array(b"XXXX" + bytes(32))

    def test_truncated_buffer_rejected(self):
        with pytest.raises(ValueError):
            decode_array(b"mL")

    def test_store_integration(self, rng):
        kv = KVStore()
        a = rng.standard_normal((3, 4)).astype(np.float32)
        kv.put("arr", encode_array(a))
        np.testing.assert_array_equal(decode_array(kv.get("arr")), a)


class TestArrayStore:
    """Zero-copy ndarray store: same accounting as serialized bytes."""

    def test_get_returns_stored_array_read_only(self, rng):
        from repro.kvstore import ArrayStore

        st_ = ArrayStore()
        a = rng.standard_normal((3, 4)).astype(np.complex64)
        st_.put("k", a)
        got = st_.get("k")
        assert isinstance(got, np.ndarray)
        assert not got.flags.writeable
        assert st_.get("k") is got  # zero-copy: the stored array itself
        np.testing.assert_array_equal(got, a)

    def test_put_detaches_from_caller_buffer(self, rng):
        from repro.kvstore import ArrayStore

        st_ = ArrayStore()
        a = np.ones(4, dtype=np.float32)
        st_.put("k", a)
        a[:] = 7.0
        np.testing.assert_array_equal(st_.get("k"), np.ones(4, dtype=np.float32))

    def test_non_array_rejected(self):
        from repro.kvstore import ArrayStore

        with pytest.raises(TypeError):
            ArrayStore().put("k", b"bytes")

    def test_accounting_matches_serialized_kvstore(self, rng):
        """Every byte counter must equal a KVStore holding encode_array
        payloads of the same values — the property that keeps the traffic
        figures identical across value modes."""
        from repro.kvstore import ArrayStore

        arrays = [
            rng.standard_normal((4, 3)).astype(np.complex64),
            rng.standard_normal(7).astype(np.float32),
            rng.standard_normal((2, 2, 2)),
        ]
        st_a, st_b = ArrayStore(), KVStore()
        for i, a in enumerate(arrays):
            st_a.put(i, a)
            st_b.put(i, encode_array(a))
        st_a.get(0)
        st_b.get(0)
        st_a.get(99)
        st_b.get(99)
        assert st_a.nbytes == st_b.nbytes
        assert st_a.stats == st_b.stats
        st_a.delete(1)
        st_b.delete(1)
        assert st_a.nbytes == st_b.nbytes

    def test_eviction_by_encoded_size(self, rng):
        from repro.kvstore import ArrayStore

        a = rng.standard_normal(8).astype(np.float32)
        cap = 2 * encoded_nbytes(a) + 1
        st_ = ArrayStore(capacity_bytes=cap)
        st_.put(0, a)
        st_.put(1, a)
        st_.put(2, a)  # must evict the FIFO-oldest entry
        assert st_.stats.evictions == 1
        assert 0 not in st_ and 1 in st_ and 2 in st_

    def test_oversized_value_rejected(self, rng):
        from repro.kvstore import ArrayStore

        a = rng.standard_normal(100).astype(np.float64)
        with pytest.raises(ValueError):
            ArrayStore(capacity_bytes=64).put("k", a)
