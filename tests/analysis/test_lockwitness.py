"""Runtime lock-order witness: unit protocol tests + integration runs.

The witness patches the ``threading`` lock factories, so every test here
restores the previous state — including the case where the whole session
already runs under ``REPRO_LOCKWITNESS=1``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis import lockwitness
from repro.analysis.lockwitness import LockOrderError

WAIT = 30.0


@pytest.fixture()
def fresh_witness():
    was = lockwitness.installed()
    lockwitness.install()
    lockwitness.reset()
    yield
    if was:
        lockwitness.install()
        lockwitness.reset()
    else:
        lockwitness.uninstall()


class TestOrderCycles:
    def test_opposite_orders_raise(self, fresh_witness):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with pytest.raises(LockOrderError) as exc:
                lock_a.acquire()
        assert len(exc.value.cycle) == 2

    def test_raise_happens_before_blocking(self, fresh_witness):
        # another thread holds a; main holds b and asks for a after the
        # a -> b order was witnessed: without the pre-acquire check this
        # is an actual deadlock shape, not just a recorded inversion
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        holder_in = threading.Event()
        holder_out = threading.Event()

        def holder():
            with lock_a:
                holder_in.set()
                holder_out.wait(WAIT)

        t = threading.Thread(target=holder)
        t.start()
        assert holder_in.wait(WAIT)
        try:
            with lock_b:
                with pytest.raises(LockOrderError):
                    lock_a.acquire()
        finally:
            holder_out.set()
            t.join(WAIT)

    def test_consistent_order_never_raises(self, fresh_witness):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert len(lockwitness.graph_edges()) == 1

    def test_same_site_locks_are_one_node(self, fresh_witness):
        # two shards whose locks come from the same line: locking one
        # while holding the other must not be reported as a cycle
        def make():
            return threading.Lock()

        shard_a, shard_b = make(), make()
        with shard_a:
            with shard_b:
                pass
        with shard_b:
            with shard_a:
                pass

    def test_three_lock_cycle(self, fresh_witness):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        lock_c = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_c:
                pass
        with lock_c:
            with pytest.raises(LockOrderError) as exc:
                lock_a.acquire()
        assert len(exc.value.cycle) == 3

    def test_reset_forgets_recorded_edges(self, fresh_witness):
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        lockwitness.reset()
        assert lockwitness.graph_edges() == {}
        with lock_b:
            with lock_a:  # the opposite order is fine after a reset
                pass


class TestLockProtocol:
    def test_self_deadlock_raises(self, fresh_witness):
        lock = threading.Lock()
        lock.acquire()
        with pytest.raises(LockOrderError, match="self-deadlock"):
            lock.acquire()
        lock.release()

    def test_nonblocking_reacquire_just_fails(self, fresh_witness):
        lock = threading.Lock()
        lock.acquire()
        assert lock.acquire(blocking=False) is False
        lock.release()

    def test_rlock_reentry_is_fine(self, fresh_witness):
        rlock = threading.RLock()
        with rlock:
            with rlock:
                assert rlock._is_owned()

    def test_locked_query(self, fresh_witness):
        lock = threading.Lock()
        assert not lock.locked()
        with lock:
            assert lock.locked()

    def test_contended_lock_across_threads(self, fresh_witness):
        lock = threading.Lock()
        hits = []

        def worker():
            for _ in range(50):
                with lock:
                    hits.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)
        assert len(hits) == 200

    def test_factories_restored_after_uninstall(self):
        was = lockwitness.installed()
        lockwitness.install()
        assert lockwitness.installed()
        assert isinstance(threading.Lock(), object)
        lockwitness.uninstall()
        assert not lockwitness.installed()
        try:
            assert type(threading.Lock()).__name__ == "lock"
        finally:
            if was:
                lockwitness.install()

    def test_witness_context_manager(self):
        was = lockwitness.installed()
        with lockwitness.witness():
            assert lockwitness.installed()
        assert lockwitness.installed() == was

    def test_enabled_from_env(self, monkeypatch):
        for value, expect in [
            ("1", True), ("true", True), ("on", True),
            ("0", False), ("", False),
        ]:
            monkeypatch.setenv(lockwitness.ENV_VAR, value)
            assert lockwitness.enabled_from_env() is expect
        monkeypatch.delenv(lockwitness.ENV_VAR)
        assert lockwitness.enabled_from_env() is False


class TestConditionProtocol:
    def test_wait_notify_over_default_rlock(self, fresh_witness):
        cond = threading.Condition()
        box: list[int] = []

        def waiter():
            with cond:
                while not box:
                    cond.wait(WAIT)
                box.append(2)

        t = threading.Thread(target=waiter)
        t.start()
        with cond:
            box.append(1)
            cond.notify_all()
        t.join(WAIT)
        assert box == [1, 2]

    def test_wait_notify_over_witnessed_lock(self, fresh_witness):
        # the SpillManager pattern: Condition sharing an explicit Lock
        lock = threading.Lock()
        cond = threading.Condition(lock)
        state = {"ready": False}

        def setter():
            with lock:
                state["ready"] = True
                cond.notify_all()

        t = threading.Thread(target=setter)
        with cond:
            t.start()
            while not state["ready"]:
                cond.wait(WAIT)
        t.join(WAIT)
        assert state["ready"]

    def test_wait_releases_all_recursion_levels(self, fresh_witness):
        cond = threading.Condition()
        box: list[int] = []

        def notifier():
            with cond:
                box.append(1)
                cond.notify_all()

        def waiter():
            with cond:
                with cond:  # two levels deep: wait() must shed both
                    threading.Thread(target=notifier).start()
                    while not box:
                        cond.wait(WAIT)
                    box.append(2)

        t = threading.Thread(target=waiter)
        t.start()
        t.join(WAIT)
        assert box == [1, 2]


class TestIntegration:
    def test_bounded_queue_pipeline(self, fresh_witness):
        from repro.pipeline import BoundedQueue

        q = BoundedQueue(2)
        got: list[int] = []

        def producer():
            for i in range(64):
                q.put(i)
            q.close()

        t = threading.Thread(target=producer)
        t.start()
        got.extend(q)
        t.join(WAIT)
        assert got == list(range(64))

    def test_chunk_pipeline(self, fresh_witness):
        from repro.pipeline import ChunkPipeline

        out: list[tuple[int, int]] = []

        def sweep(chunks):
            for c in chunks:
                yield c, 2 * c

        ChunkPipeline(iter(range(32)), sweep, lambda c, v: out.append((c, v))).run()
        assert sorted(out) == [(c, 2 * c) for c in range(32)]

    def test_spill_manager_roundtrip(self, fresh_witness, tmp_path):
        from repro.memio import SpillManager

        rng = np.random.default_rng(5)
        arrays = {f"v{i}": rng.normal(size=(16, 16)) for i in range(6)}
        with SpillManager(str(tmp_path)) as mgr:
            for name, arr in arrays.items():
                mgr.spill(name, arr)

            def reader(names):
                for name in names:
                    mgr.prefetch(name)
                    np.testing.assert_array_equal(mgr.fetch(name), arrays[name])

            names = sorted(arrays)
            threads = [
                threading.Thread(target=reader, args=(names[:3],)),
                threading.Thread(target=reader, args=(names[3:],)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(WAIT)
