"""Concurrency rules: lock-order cycles, guarded writes, broad excepts."""

from __future__ import annotations

from repro.analysis import run_analysis

LOCK_CYCLE = """
    import threading

    class Shard:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def forward(self):
            with self._a:
                with self._b:
                    pass

        def backward(self):
            with self._b:
                with self._a:
                    pass
"""

LOCK_CONSISTENT = """
    import threading

    class Shard:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def forward(self):
            with self._a:
                with self._b:
                    pass

        def also_forward(self):
            with self._a:
                with self._b:
                    pass
"""

LOCK_CYCLE_INTERPROCEDURAL = """
    import threading

    class Shard:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def outer(self):
            with self._a:
                self.take_b()

        def take_b(self):
            with self._b:
                pass

        def reversed_order(self):
            with self._b:
                with self._a:
                    pass
"""


class TestLockOrder:
    def test_cycle_is_reported_on_every_edge(self, mini_repo):
        root = mini_repo({"src/shard.py": LOCK_CYCLE})
        report = run_analysis(root, select={"lock-order"})
        assert len(report.findings) == 2
        assert {f.rule for f in report.findings} == {"lock-order"}
        messages = " ".join(f.message for f in report.findings)
        assert "Shard._a" in messages and "Shard._b" in messages
        assert "deadlock" in messages

    def test_consistent_order_is_clean(self, mini_repo):
        root = mini_repo({"src/shard.py": LOCK_CONSISTENT})
        report = run_analysis(root, select={"lock-order"})
        assert report.findings == []

    def test_cycle_through_a_method_call(self, mini_repo):
        root = mini_repo({"src/shard.py": LOCK_CYCLE_INTERPROCEDURAL})
        report = run_analysis(root, select={"lock-order"})
        assert len(report.findings) >= 2
        # the indirect edge carries the callee that takes the second lock
        assert any("via Shard.take_b()" in f.message for f in report.findings)

    def test_single_lock_never_cycles(self, mini_repo):
        root = mini_repo(
            {
                "src/one.py": """
                import threading

                class One:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def a(self):
                        with self._lock:
                            pass
                """
            }
        )
        report = run_analysis(root, select={"lock-order"})
        assert report.findings == []


GUARDED = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: self._lock
            self._items = []  # guarded-by: self._lock

        def bump_unlocked(self):
            self.count += 1

        def bump_locked_properly(self):
            with self._lock:
                self.count += 1

        def stash(self, x):
            self._items.append(x)

        def _drain_locked(self):
            self.count = 0
"""


class TestGuardedWrite:
    def test_unlocked_writes_are_flagged(self, mini_repo):
        root = mini_repo({"src/counter.py": GUARDED})
        report = run_analysis(root, select={"guarded-write"})
        assert len(report.findings) == 2
        lines = {f.snippet for f in report.findings}
        assert lines == {"self.count += 1", "self._items.append(x)"}

    def test_init_and_locked_suffix_methods_are_exempt(self, mini_repo):
        # the fixture's __init__ assigns and _drain_locked writes — neither
        # shows up among the two flagged sites
        root = mini_repo({"src/counter.py": GUARDED})
        report = run_analysis(root, select={"guarded-write"})
        assert all("_drain" not in (f.snippet or "") for f in report.findings)

    def test_condition_wrapping_the_guard_counts_as_holding_it(self, mini_repo):
        root = mini_repo(
            {
                "src/cond.py": """
                import threading

                class Buffered:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._idle = threading.Condition(self._lock)
                        self.pending = 0  # guarded-by: self._lock

                    def submit(self):
                        with self._idle:
                            self.pending += 1
                """
            }
        )
        report = run_analysis(root, select={"guarded-write"})
        assert report.findings == []

    def test_write_through_guarded_attribute_is_checked(self, mini_repo):
        root = mini_repo(
            {
                "src/stats.py": """
                import threading

                class Stats:
                    pass

                class Server:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.stats = Stats()  # guarded-by: self._lock

                    def hit(self):
                        self.stats.hits += 1
                """
            }
        )
        report = run_analysis(root, select={"guarded-write"})
        assert len(report.findings) == 1
        assert "self.stats" in report.findings[0].message

    def test_nested_function_does_not_inherit_the_held_lock(self, mini_repo):
        root = mini_repo(
            {
                "src/closure.py": """
                import threading

                class Deferred:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.value = 0  # guarded-by: self._lock

                    def schedule(self):
                        with self._lock:
                            def later():
                                self.value = 1
                            return later
                """
            }
        )
        report = run_analysis(root, select={"guarded-write"})
        assert len(report.findings) == 1

    def test_unattached_annotation_is_a_finding(self, mini_repo):
        root = mini_repo(
            {
                "src/dangling.py": """
                import threading

                class Dangling:
                    def __init__(self):
                        self._lock = threading.Lock()
                        # guarded-by: self._lock
                        self.count = 0
                """
            }
        )
        report = run_analysis(root, select={"guarded-write"})
        assert len(report.findings) == 1
        assert "not attached" in report.findings[0].message

    def test_suppression_is_honored_and_counted(self, mini_repo):
        root = mini_repo(
            {
                "src/counter.py": """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0  # guarded-by: self._lock

                    def racy_by_design(self):
                        self.count += 1  # analysis: ignore[guarded-write]
                """
            }
        )
        report = run_analysis(root, select={"guarded-write"})
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["guarded-write"]


class TestBroadExcept:
    def test_bare_except_is_always_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/worker.py": """
                def run(task):
                    try:
                        task()
                    except:
                        pass
                """
            }
        )
        report = run_analysis(root, select={"broad-except-in-thread"})
        assert len(report.findings) == 1
        assert "bare" in report.findings[0].message

    def test_silent_broad_except_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/worker.py": """
                def run(task):
                    try:
                        task()
                    except Exception:
                        pass
                """
            }
        )
        report = run_analysis(root, select={"broad-except-in-thread"})
        assert len(report.findings) == 1

    def test_storing_the_exception_is_not_a_swallow(self, mini_repo):
        root = mini_repo(
            {
                "src/worker.py": """
                def run(task, box):
                    try:
                        task()
                    except BaseException as exc:
                        box.error = exc
                """
            }
        )
        report = run_analysis(root, select={"broad-except-in-thread"})
        assert report.findings == []

    def test_logging_in_the_handler_is_not_a_swallow(self, mini_repo):
        root = mini_repo(
            {
                "src/worker.py": """
                import logging

                def run(task):
                    try:
                        task()
                    except Exception:
                        logging.exception("task died")
                """
            }
        )
        report = run_analysis(root, select={"broad-except-in-thread"})
        assert report.findings == []

    def test_narrow_except_is_fine(self, mini_repo):
        root = mini_repo(
            {
                "src/worker.py": """
                def run(task):
                    try:
                        task()
                    except (OSError, ValueError):
                        pass
                """
            }
        )
        report = run_analysis(root, select={"broad-except-in-thread"})
        assert report.findings == []

    def test_rule_is_scoped_to_src(self, mini_repo):
        root = mini_repo(
            {
                "tests/test_x.py": """
                def test_tolerant():
                    try:
                        pass
                    except Exception:
                        pass
                """
            }
        )
        report = run_analysis(root, select={"broad-except-in-thread"})
        assert report.findings == []
