"""Cross-module exhaustiveness rules: wire protocol and sweep dispatch."""

from __future__ import annotations

from repro.analysis import run_analysis

WIRE = """
    MSG_PING = 1
    MSG_PING_OK = 2
    MSG_DROP = 3
    MSG_DROP_OK = 4

    MESSAGE_NAMES = {
        MSG_PING: "ping",
        MSG_PING_OK: "ping_ok",
        MSG_DROP: "drop",
        MSG_DROP_OK: "drop_ok",
    }
"""

SERVER_FULL = """
    from .wire import MSG_DROP, MSG_DROP_OK, MSG_PING, MSG_PING_OK

    def handle(kind):
        if kind == MSG_PING:
            return MSG_PING_OK
        if kind == MSG_DROP:
            return MSG_DROP_OK
        raise ValueError(kind)
"""

CLIENT_FULL = """
    from .wire import MSG_DROP, MSG_PING

    def ping():
        return MSG_PING

    def drop():
        return MSG_DROP
"""


class TestWireExhaustive:
    def test_fully_wired_protocol_is_clean(self, mini_repo):
        root = mini_repo(
            {
                "src/net/wire.py": WIRE,
                "src/net/server.py": SERVER_FULL,
                "src/net/client.py": CLIENT_FULL,
            }
        )
        report = run_analysis(root, select={"wire-exhaustive"})
        assert report.findings == []

    def test_missing_server_handler_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/net/wire.py": WIRE,
                "src/net/server.py": """
                from .wire import MSG_PING, MSG_PING_OK

                def handle(kind):
                    if kind == MSG_PING:
                        return MSG_PING_OK
                """,
                "src/net/client.py": CLIENT_FULL,
            }
        )
        report = run_analysis(root, select={"wire-exhaustive"})
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.path == "src/net/wire.py"
        assert "MSG_DROP" in f.message and "server" in f.message

    def test_missing_client_encoder_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/net/wire.py": WIRE,
                "src/net/server.py": SERVER_FULL,
                "src/net/client.py": """
                from .wire import MSG_PING

                def ping():
                    return MSG_PING
                """,
            }
        )
        report = run_analysis(root, select={"wire-exhaustive"})
        assert len(report.findings) == 1
        assert "client encoder" in report.findings[0].message

    def test_unregistered_message_name_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/net/wire.py": """
                MSG_PING = 1
                MSG_PING_OK = 2

                MESSAGE_NAMES = {
                    MSG_PING: "ping",
                }
                """,
                "src/net/server.py": SERVER_FULL,
                "src/net/client.py": CLIENT_FULL,
            }
        )
        report = run_analysis(root, select={"wire-exhaustive"})
        assert len(report.findings) == 1
        assert "MESSAGE_NAMES" in report.findings[0].message
        assert "MSG_PING_OK" in report.findings[0].message

    def test_wire_without_siblings_checks_only_registration(self, mini_repo):
        root = mini_repo({"src/net/wire.py": WIRE})
        report = run_analysis(root, select={"wire-exhaustive"})
        assert report.findings == []


WIRE_METRICS = """
    MSG_PING = 1
    MSG_PING_OK = 2
    MSG_METRICS = 13
    MSG_METRICS_OK = 14

    MESSAGE_NAMES = {
        MSG_PING: "ping",
        MSG_PING_OK: "ping_ok",
        MSG_METRICS: "metrics",
        MSG_METRICS_OK: "metrics_ok",
    }
"""


class TestWireExhaustiveMetrics:
    """The observability pull (``MSG_METRICS``/``MSG_METRICS_OK``) follows
    the same request/reply contract as every other message pair."""

    def test_fully_wired_metrics_pair_is_clean(self, mini_repo):
        root = mini_repo(
            {
                "src/net/wire.py": WIRE_METRICS,
                "src/net/server.py": """
                from .wire import MSG_METRICS, MSG_METRICS_OK, MSG_PING, MSG_PING_OK

                def handle(kind):
                    if kind == MSG_PING:
                        return MSG_PING_OK
                    if kind == MSG_METRICS:
                        return MSG_METRICS_OK
                    raise ValueError(kind)
                """,
                "src/net/client.py": """
                from .wire import MSG_METRICS, MSG_PING

                def ping():
                    return MSG_PING

                def metrics():
                    return MSG_METRICS
                """,
            }
        )
        report = run_analysis(root, select={"wire-exhaustive"})
        assert report.findings == []

    def test_metrics_without_client_encoder_is_flagged(self, mini_repo):
        # server answers metrics pulls, but no client can issue one
        root = mini_repo(
            {
                "src/net/wire.py": WIRE_METRICS,
                "src/net/server.py": """
                from .wire import MSG_METRICS, MSG_METRICS_OK, MSG_PING, MSG_PING_OK

                def handle(kind):
                    if kind == MSG_PING:
                        return MSG_PING_OK
                    if kind == MSG_METRICS:
                        return MSG_METRICS_OK
                """,
                "src/net/client.py": """
                from .wire import MSG_PING

                def ping():
                    return MSG_PING
                """,
            }
        )
        report = run_analysis(root, select={"wire-exhaustive"})
        assert len(report.findings) == 1
        f = report.findings[0]
        assert "MSG_METRICS" in f.message and "client encoder" in f.message

    def test_metrics_without_server_handler_is_flagged(self, mini_repo):
        # the pair is declared and the client sends it, but no server branch
        root = mini_repo(
            {
                "src/net/wire.py": WIRE_METRICS,
                "src/net/server.py": """
                from .wire import MSG_PING, MSG_PING_OK

                def handle(kind):
                    if kind == MSG_PING:
                        return MSG_PING_OK
                """,
                "src/net/client.py": """
                from .wire import MSG_METRICS, MSG_PING

                def ping():
                    return MSG_PING

                def metrics():
                    return MSG_METRICS
                """,
            }
        )
        report = run_analysis(root, select={"wire-exhaustive"})
        assert len(report.findings) == 1
        f = report.findings[0]
        assert "MSG_METRICS" in f.message and "server" in f.message

    def test_unregistered_metrics_reply_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/net/wire.py": """
                MSG_METRICS = 13
                MSG_METRICS_OK = 14

                MESSAGE_NAMES = {
                    MSG_METRICS: "metrics",
                }
                """,
            }
        )
        report = run_analysis(root, select={"wire-exhaustive"})
        assert len(report.findings) == 1
        assert "MSG_METRICS_OK" in report.findings[0].message
        assert "MESSAGE_NAMES" in report.findings[0].message


EXEC_CLEAN = """
    SWEEP_KERNELS = {"Fu1D": "_run_fu1d", "Fu1D*": "_run_fu1d_adj"}
    SWEEP_AXIS = {"Fu1D": 0, "Fu1D*": 0}

    class DirectExecutor:
        def sweep_stream(self, op, chunks):
            for chunk in chunks:
                yield chunk

        def _run_fu1d(self, chunk):
            return chunk

        def _run_fu1d_adj(self, chunk):
            return chunk
"""


class TestSweepKernel:
    def test_complete_dispatch_is_clean(self, mini_repo):
        root = mini_repo({"src/executor.py": EXEC_CLEAN})
        report = run_analysis(root, select={"sweep-kernel"})
        assert report.findings == []

    def test_executor_without_the_seam_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/executor.py": """
                SWEEP_KERNELS = {"Fu1D": "_run_fu1d"}
                SWEEP_AXIS = {"Fu1D": 0}

                class Seamless:
                    def _run_fu1d(self, chunk):
                        return chunk
                """
            }
        )
        report = run_analysis(root, select={"sweep-kernel"})
        assert len(report.findings) == 1
        assert "sweep_stream" in report.findings[0].message

    def test_inherited_seam_satisfies(self, mini_repo):
        root = mini_repo(
            {
                "src/executor.py": """
                SWEEP_KERNELS = {"Fu1D": "_run_fu1d"}
                SWEEP_AXIS = {"Fu1D": 0}

                class Base:
                    def sweep_stream(self, op, chunks):
                        return chunks

                class Derived(Base):
                    def _run_fu1d(self, chunk):
                        return chunk
                """
            }
        )
        report = run_analysis(root, select={"sweep-kernel"})
        assert report.findings == []

    def test_getattr_delegation_satisfies(self, mini_repo):
        root = mini_repo(
            {
                "src/executor.py": """
                SWEEP_KERNELS = {"Fu1D": "_run_fu1d"}
                SWEEP_AXIS = {"Fu1D": 0}

                class Proxy:
                    def __getattr__(self, name):
                        return getattr(object(), name)

                    def _run_fu1d(self, chunk):
                        return chunk
                """
            }
        )
        report = run_analysis(root, select={"sweep-kernel"})
        assert report.findings == []

    def test_unimplemented_kernel_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/executor.py": """
                SWEEP_KERNELS = {"Fu1D": "_run_fu1d", "Fu2D": "_run_fu2d"}
                SWEEP_AXIS = {"Fu1D": 0, "Fu2D": 0}

                class DirectExecutor:
                    def sweep_stream(self, op, chunks):
                        return chunks

                    def _run_fu1d(self, chunk):
                        return chunk
                """
            }
        )
        report = run_analysis(root, select={"sweep-kernel"})
        assert len(report.findings) == 1
        assert "_run_fu2d" in report.findings[0].message

    def test_missing_sweep_axis_entry_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/executor.py": """
                SWEEP_KERNELS = {"Fu1D": "_run_fu1d"}
                SWEEP_AXIS = {}

                class DirectExecutor:
                    def sweep_stream(self, op, chunks):
                        return chunks

                    def _run_fu1d(self, chunk):
                        return chunk
                """
            }
        )
        report = run_analysis(root, select={"sweep-kernel"})
        assert len(report.findings) == 1
        assert "SWEEP_AXIS" in report.findings[0].message

WIRE_TRACE = """
    MSG_PING = 1
    MSG_PING_OK = 2
    MSG_TRACE_PULL = 17
    MSG_TRACE_PULL_OK = 18

    MESSAGE_NAMES = {
        MSG_PING: "ping",
        MSG_PING_OK: "ping_ok",
        MSG_TRACE_PULL: "trace_pull",
        MSG_TRACE_PULL_OK: "trace_pull_ok",
    }
"""


class TestWireExhaustiveTracePull:
    """The span drain (``MSG_TRACE_PULL``/``MSG_TRACE_PULL_OK``) follows
    the same request/reply contract as every other message pair."""

    def test_fully_wired_trace_pair_is_clean(self, mini_repo):
        root = mini_repo(
            {
                "src/net/wire.py": WIRE_TRACE,
                "src/net/server.py": """
                from .wire import MSG_PING, MSG_PING_OK, MSG_TRACE_PULL, MSG_TRACE_PULL_OK

                def handle(kind):
                    if kind == MSG_PING:
                        return MSG_PING_OK
                    if kind == MSG_TRACE_PULL:
                        return MSG_TRACE_PULL_OK
                    raise ValueError(kind)
                """,
                "src/net/client.py": """
                from .wire import MSG_PING, MSG_TRACE_PULL

                def ping():
                    return MSG_PING

                def trace_pull():
                    return MSG_TRACE_PULL
                """,
            }
        )
        report = run_analysis(root, select={"wire-exhaustive"})
        assert report.findings == []

    def test_trace_pull_without_client_encoder_is_flagged(self, mini_repo):
        # server drains spans, but no client can ask for them
        root = mini_repo(
            {
                "src/net/wire.py": WIRE_TRACE,
                "src/net/server.py": """
                from .wire import MSG_PING, MSG_PING_OK, MSG_TRACE_PULL, MSG_TRACE_PULL_OK

                def handle(kind):
                    if kind == MSG_PING:
                        return MSG_PING_OK
                    if kind == MSG_TRACE_PULL:
                        return MSG_TRACE_PULL_OK
                """,
                "src/net/client.py": """
                from .wire import MSG_PING

                def ping():
                    return MSG_PING
                """,
            }
        )
        report = run_analysis(root, select={"wire-exhaustive"})
        assert len(report.findings) == 1
        f = report.findings[0]
        assert "MSG_TRACE_PULL" in f.message and "client encoder" in f.message

    def test_trace_pull_without_server_handler_is_flagged(self, mini_repo):
        # declared and sent, but the daemon never answers it
        root = mini_repo(
            {
                "src/net/wire.py": WIRE_TRACE,
                "src/net/server.py": """
                from .wire import MSG_PING, MSG_PING_OK

                def handle(kind):
                    if kind == MSG_PING:
                        return MSG_PING_OK
                """,
                "src/net/client.py": """
                from .wire import MSG_PING, MSG_TRACE_PULL

                def ping():
                    return MSG_PING

                def trace_pull():
                    return MSG_TRACE_PULL
                """,
            }
        )
        report = run_analysis(root, select={"wire-exhaustive"})
        assert len(report.findings) == 1
        f = report.findings[0]
        assert "MSG_TRACE_PULL" in f.message and "server" in f.message
