"""Dtype/backend-flow rules: FFT routing, complex128 widening, seeded RNG."""

from __future__ import annotations

from repro.analysis import run_analysis


class TestDirectFFT:
    def test_np_fft_outside_usfft_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/proj.py": """
                import numpy as np

                def f(x):
                    return np.fft.fft(x)
                """
            }
        )
        report = run_analysis(root, select={"direct-fft"})
        assert len(report.findings) == 1
        assert "usfft" in report.findings[0].message

    def test_one_finding_per_chain_not_per_attribute(self, mini_repo):
        root = mini_repo(
            {
                "src/proj.py": """
                import numpy as np

                def f(x):
                    return np.fft.fftn(x, axes=(0, 1))
                """
            }
        )
        report = run_analysis(root, select={"direct-fft"})
        assert len(report.findings) == 1

    def test_usfft_module_is_exempt(self, mini_repo):
        root = mini_repo(
            {
                "src/lamino/usfft.py": """
                import numpy as np

                def fft_centered(x):
                    return np.fft.fftshift(np.fft.fft(np.fft.ifftshift(x)))
                """
            }
        )
        report = run_analysis(root, select={"direct-fft"})
        assert report.findings == []


class TestDtypeWiden:
    def test_astype_complex128_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def widen(x):
                    return x.astype(np.complex128)
                """
            }
        )
        report = run_analysis(root, select={"dtype-widen"})
        assert len(report.findings) == 1

    def test_dtype_keyword_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def alloc(n):
                    return np.empty(n, dtype=np.complex128)
                """
            }
        )
        report = run_analysis(root, select={"dtype-widen"})
        assert len(report.findings) == 1

    def test_positional_dtype_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def alloc(n):
                    return np.zeros(n, np.complex128)
                """
            }
        )
        report = run_analysis(root, select={"dtype-widen"})
        assert len(report.findings) == 1

    def test_dtype_object_construction_is_exempt(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                WIDE = np.dtype(np.complex128)
                """
            }
        )
        report = run_analysis(root, select={"dtype-widen"})
        assert report.findings == []

    def test_complex64_is_fine(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def alloc(n):
                    return np.zeros(n, dtype=np.complex64)
                """
            }
        )
        report = run_analysis(root, select={"dtype-widen"})
        assert report.findings == []

    def test_rule_is_scoped_to_src(self, mini_repo):
        root = mini_repo(
            {
                "tests/test_m.py": """
                import numpy as np

                def test_reference():
                    assert np.zeros(3, dtype=np.complex128).size == 3
                """
            }
        )
        report = run_analysis(root, select={"dtype-widen"})
        assert report.findings == []


class TestUnseededRandom:
    def test_legacy_module_functions_are_flagged(self, mini_repo):
        root = mini_repo(
            {
                "tests/test_m.py": """
                import numpy as np

                def test_noise():
                    return np.random.rand(3)
                """
            }
        )
        report = run_analysis(root, select={"unseeded-random"})
        assert len(report.findings) == 1

    def test_unseeded_generator_constructor_is_flagged(self, mini_repo):
        root = mini_repo(
            {
                "benchmarks/bench_m.py": """
                import numpy as np

                def bench():
                    rng = np.random.default_rng()
                    return rng.normal(size=8)
                """
            }
        )
        report = run_analysis(root, select={"unseeded-random"})
        assert len(report.findings) == 1

    def test_seeded_generator_is_fine(self, mini_repo):
        root = mini_repo(
            {
                "tests/test_m.py": """
                import numpy as np

                def test_noise():
                    rng = np.random.default_rng(1234)
                    return rng.normal(size=8)
                """
            }
        )
        report = run_analysis(root, select={"unseeded-random"})
        assert report.findings == []

    def test_src_is_out_of_scope(self, mini_repo):
        # library code receives its Generator from the caller; the seeding
        # discipline is enforced where determinism matters — tests/benchmarks
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def jitter(x):
                    return x + np.random.rand(*x.shape)
                """
            }
        )
        report = run_analysis(root, select={"unseeded-random"})
        assert report.findings == []
