"""The repo must be clean under its own analyzer — CI's gate, as a test."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_is_analysis_clean():
    report = run_analysis(REPO_ROOT)
    assert report.files_scanned > 100
    assert [f.render() for f in report.findings] == []


def test_suppressions_are_accounted_for():
    """Every `# analysis: ignore` in the tree is live — suppressing a real
    finding — so stale ignores surface here instead of rotting."""
    report = run_analysis(REPO_ROOT)
    assert len(report.suppressed) > 0
    by_rule = sorted({f.rule for f in report.suppressed})
    assert by_rule == ["direct-fft", "dtype-widen"]
