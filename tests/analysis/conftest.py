"""Fixture-repo builder for the static-analysis tests.

Each test writes a miniature repo (``src/``, ``tests/``, ...) into
``tmp_path`` and runs :func:`repro.analysis.run_analysis` over it, so the
rules are exercised against known-violating and known-clean sources
without ever depending on the real tree's contents.
"""

from __future__ import annotations

import textwrap

import pytest


@pytest.fixture()
def mini_repo(tmp_path):
    """``build({relpath: source, ...}) -> root`` — writes a fixture tree."""

    def build(files: dict[str, str]):
        for rel, text in files.items():
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(textwrap.dedent(text), encoding="utf-8")
        return tmp_path

    return build


def rule_ids(report) -> list[str]:
    return sorted(f.rule for f in report.findings)
