"""Engine behavior: collection, suppression accounting, CLI contract."""

from __future__ import annotations

import json

import pytest

from repro.analysis import run_analysis
from repro.analysis.cli import main
from repro.analysis.engine import rule_catalog

FFT_BAD = """
    import numpy as np

    def f(x):
        return np.fft.fft(x)
"""


class TestCollection:
    def test_clean_repo(self, mini_repo):
        root = mini_repo({"src/ok.py": "x = 1\n"})
        report = run_analysis(root)
        assert report.clean
        assert report.files_scanned == 1
        assert report.findings == [] and report.suppressed == []

    def test_parse_error_is_a_finding(self, mini_repo):
        root = mini_repo({"src/broken.py": "def f(:\n    pass\n"})
        report = run_analysis(root)
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert not report.clean

    def test_only_known_sections_are_scanned(self, mini_repo):
        root = mini_repo(
            {
                "src/a.py": "x = 1\n",
                "docs/b.py": "import numpy as np\nnp.fft.fft(0)\n",
            }
        )
        report = run_analysis(root)
        assert report.files_scanned == 1
        assert report.clean

    def test_explicit_paths_restrict_the_scan(self, mini_repo):
        root = mini_repo(
            {"src/bad.py": FFT_BAD, "src/ok.py": "x = 1\n"}
        )
        report = run_analysis(root, paths=["src/ok.py"])
        assert report.files_scanned == 1
        assert report.clean


class TestSuppression:
    def test_same_line_suppression(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def f(x):
                    return np.fft.fft(x)  # analysis: ignore[direct-fft]
                """
            }
        )
        report = run_analysis(root)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["direct-fft"]
        assert report.clean  # suppressed findings do not fail the build

    def test_standalone_comment_above_suppresses(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def f(x):
                    # analysis: ignore[direct-fft]
                    return np.fft.fft(x)
                """
            }
        )
        report = run_analysis(root)
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_comment_two_lines_above_does_not_bind(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def f(x):
                    # analysis: ignore[direct-fft]

                    return np.fft.fft(x)
                """
            }
        )
        report = run_analysis(root)
        assert [f.rule for f in report.findings] == ["direct-fft"]

    def test_wrong_rule_id_does_not_suppress(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def f(x):
                    return np.fft.fft(x)  # analysis: ignore[dtype-widen]
                """
            }
        )
        report = run_analysis(root)
        assert [f.rule for f in report.findings] == ["direct-fft"]
        assert report.suppressed == []

    def test_bracketless_ignore_suppresses_all_rules(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def f(x):
                    return np.fft.fft(x).astype(np.complex128)  # analysis: ignore
                """
            }
        )
        report = run_analysis(root)
        assert report.findings == []
        assert sorted(f.rule for f in report.suppressed) == [
            "direct-fft",
            "dtype-widen",
        ]

    def test_suppression_inside_string_literal_is_inert(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": '''
                import numpy as np

                NOTE = "# analysis: ignore[direct-fft]"

                def f(x):
                    return np.fft.fft(x)
                '''
            }
        )
        report = run_analysis(root)
        assert [f.rule for f in report.findings] == ["direct-fft"]


class TestSelection:
    def test_select_runs_only_named_rules(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def f(x):
                    return np.fft.fft(x).astype(np.complex128)
                """
            }
        )
        report = run_analysis(root, select={"dtype-widen"})
        assert [f.rule for f in report.findings] == ["dtype-widen"]

    def test_ignore_skips_named_rules(self, mini_repo):
        root = mini_repo(
            {
                "src/m.py": """
                import numpy as np

                def f(x):
                    return np.fft.fft(x).astype(np.complex128)
                """
            }
        )
        report = run_analysis(root, ignore={"direct-fft"})
        assert [f.rule for f in report.findings] == ["dtype-widen"]


class TestCLI:
    def test_exit_zero_on_clean(self, mini_repo, capsys):
        root = mini_repo({"src/ok.py": "x = 1\n"})
        assert main(["--root", str(root)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, mini_repo, capsys):
        root = mini_repo({"src/bad.py": FFT_BAD})
        assert main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "direct-fft" in out and "src/bad.py" in out

    def test_json_report(self, mini_repo, capsys):
        root = mini_repo({"src/bad.py": FFT_BAD})
        assert main(["--root", str(root), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["counts"] == {"direct-fft": 1}
        assert data["findings"][0]["path"] == "src/bad.py"
        assert data["suppressed"] == []

    def test_output_file(self, mini_repo, tmp_path, capsys):
        root = mini_repo({"src/bad.py": FFT_BAD})
        out_file = tmp_path / "report.json"
        code = main(
            ["--root", str(root), "--format", "json", "--output", str(out_file)]
        )
        assert code == 1
        data = json.loads(out_file.read_text())
        assert data["counts"] == {"direct-fft": 1}

    def test_unknown_rule_id_is_a_usage_error(self, mini_repo):
        root = mini_repo({"src/ok.py": "x = 1\n"})
        with pytest.raises(SystemExit) as exc:
            main(["--root", str(root), "--select", "no-such-rule"])
        assert exc.value.code == 2

    def test_list_rules_covers_the_catalog(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id, _ in rule_catalog():
            assert rule_id in out
