"""Reader sources, writer sinks, and the staged pipeline orchestrator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lamino import iter_chunks
from repro.memio import SpillManager
from repro.pipeline import (
    ArraySource,
    ChunkPipeline,
    SlabAssembler,
    SpillSlabWriter,
    SpillSource,
)


def passthrough(items):
    for chunk, payload in items:
        yield chunk, payload


class TestArraySource:
    def test_yields_slabs_in_order(self, rng):
        a = rng.standard_normal((10, 3))
        src = ArraySource(a, chunk_size=4)
        got = list(src)
        assert [c.index for c, _ in got] == [0, 1, 2]
        np.testing.assert_array_equal(got[2][1], a[8:10])

    def test_axis1_and_payload(self, rng):
        a = rng.standard_normal((2, 6, 2))
        src = ArraySource(a, chunk_size=3, axis=1, payload=lambda c: (c.lo, c.hi))
        assert [p for _, p in src] == [(0, 3), (3, 6)]
        assert len(src) == 2


class TestSpillSource:
    def test_prefetching_roundtrip(self, rng, tmp_path):
        a = rng.standard_normal((12, 5)).astype(np.float32)
        chunks = list(iter_chunks(12, 4))
        with SpillManager(str(tmp_path)) as sm:
            for c in chunks:
                sm.spill(f"in-{c.index}", a[c.slice])
            src = SpillSource(sm, chunks, prefix="in-", prefetch_depth=1)
            got = list(src)
            assert sm.stats.prefetches > 0
            np.testing.assert_array_equal(
                np.concatenate([v for _, v in got]), a
            )

    def test_invalid_prefetch_depth(self, tmp_path):
        with SpillManager(str(tmp_path)) as sm:
            with pytest.raises(ValueError):
                SpillSource(sm, [], prefix="x/", prefetch_depth=-1)

    def test_depth_zero_is_synchronous(self, rng, tmp_path):
        a = rng.standard_normal((8, 3)).astype(np.float32)
        chunks = list(iter_chunks(8, 4))
        with SpillManager(str(tmp_path)) as sm:
            for c in chunks:
                sm.spill(f"s-{c.index}", a[c.slice])
            got = list(SpillSource(sm, chunks, prefix="s-", prefetch_depth=0))
            assert sm.stats.prefetches == 0  # no-prefetch mode stays synchronous
            np.testing.assert_array_equal(np.concatenate([v for _, v in got]), a)


class TestSlabAssembler:
    def test_out_of_order_assembly(self, rng):
        a = rng.standard_normal((7, 3))
        sink = SlabAssembler(axis_len=7)
        for c in reversed(list(iter_chunks(7, 3))):
            sink(c, a[c.slice])
        np.testing.assert_array_equal(sink.result(), a)

    def test_preserves_memory_layout(self, rng):
        # the assembler must reproduce np.concatenate's layout decision —
        # transposed-layout slabs (as the USFFT ops emit) stay transposed
        slabs = [
            np.asfortranarray(rng.standard_normal((2, 4, 4))) for _ in range(3)
        ]
        sink = SlabAssembler(axis_len=6)
        for c, s in zip(iter_chunks(6, 2), slabs):
            sink(c, s)
        expect = np.concatenate(slabs, axis=0)
        got = sink.result()
        np.testing.assert_array_equal(got, expect)
        assert got.strides == expect.strides

    def test_gap_raises(self):
        chunks = list(iter_chunks(8, 4))
        sink = SlabAssembler(axis_len=8)
        sink(chunks[1], np.zeros((4, 2)))
        with pytest.raises(ValueError):
            sink.result()

    def test_duplicate_raises(self):
        chunks = list(iter_chunks(8, 4))
        sink = SlabAssembler(axis_len=8)
        sink(chunks[0], np.zeros((4, 2)))
        sink(chunks[0], np.zeros((4, 2)))
        with pytest.raises(ValueError):
            sink.result()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SlabAssembler(axis_len=4).result()
        with pytest.raises(ValueError):
            SlabAssembler(axis_len=0)


class TestChunkPipeline:
    def test_end_to_end(self, rng):
        a = rng.standard_normal((16, 4))
        pipe = ChunkPipeline(
            source=ArraySource(a, chunk_size=4),
            sweep=lambda items: ((c, 2.0 * x) for c, x in items),
            sink=SlabAssembler(axis_len=16),
            queue_depth=2,
        )
        out = pipe.run()
        np.testing.assert_array_equal(out, 2.0 * a)
        assert pipe.stats.items == 4

    def test_spill_to_spill(self, rng, tmp_path):
        """The out-of-core loop: SSD chunks in, SSD slabs out."""
        a = rng.standard_normal((12, 6)).astype(np.float32)
        chunks = list(iter_chunks(12, 4))
        with SpillManager(str(tmp_path)) as sm:
            for c in chunks:
                sm.spill(f"in-{c.index}", a[c.slice])
            writer = SpillSlabWriter(sm, prefix="out-")
            pipe = ChunkPipeline(
                source=SpillSource(sm, chunks, prefix="in-"),
                sweep=lambda items: ((c, x + 1.0) for c, x in items),
                sink=writer,
                queue_depth=1,
            )
            names = pipe.run()
            assert names == ["out-0", "out-1", "out-2"]
            got = np.concatenate([sm.fetch(n) for n in names])
            np.testing.assert_array_equal(got, a + 1.0)

    def test_compute_error_propagates(self, rng):
        a = rng.standard_normal((16, 4))

        def bad_sweep(items):
            for i, (c, x) in enumerate(items):
                if i == 2:
                    raise RuntimeError("kernel died")
                yield c, x

        pipe = ChunkPipeline(
            source=ArraySource(a, chunk_size=4),
            sweep=bad_sweep,
            sink=SlabAssembler(axis_len=16),
            queue_depth=1,
        )
        with pytest.raises(RuntimeError, match="kernel died"):
            pipe.run()

    def test_reader_error_propagates(self):
        def source():
            from repro.lamino import Chunk

            yield Chunk(0, 0, 0, 4), np.zeros(4)
            raise OSError("disk gone")

        pipe = ChunkPipeline(
            source=source(),
            sweep=passthrough,
            sink=SlabAssembler(axis_len=8),
            queue_depth=1,
        )
        with pytest.raises(OSError, match="disk gone"):
            pipe.run()

    def test_writer_error_propagates(self, rng):
        a = rng.standard_normal((16, 4))

        def bad_sink(chunk, value):
            raise OSError("write failed")

        pipe = ChunkPipeline(
            source=ArraySource(a, chunk_size=4),
            sweep=passthrough,
            sink=bad_sink,
            queue_depth=1,
        )
        with pytest.raises(OSError, match="write failed"):
            pipe.run()
