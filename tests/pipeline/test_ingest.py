"""Streaming ingest: chunk re-alignment, backpressure, failure modes."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.pipeline import QueueClosed, StreamingIngest


def drain(ingest):
    return list(ingest)


class TestStreamingIngest:
    def test_realigns_blocks_to_chunks(self, rng):
        data = rng.standard_normal((12, 4, 4)).astype(np.complex64)
        ingest = StreamingIngest((12, 4, 4), chunk_size=4, queue_depth=12)
        with ingest:
            for lo, hi in ((0, 5), (5, 6), (6, 12)):  # deliberately misaligned
                ingest.push(data[lo:hi])
        got = drain(ingest)
        assert [c.index for c, _ in got] == [0, 1, 2]
        np.testing.assert_array_equal(
            np.concatenate([s for _, s in got]), data
        )
        assert all(s.shape[0] == 4 for _, s in got)

    def test_pushed_blocks_are_copied(self):
        """A producer may overwrite its acquisition buffer right after
        push(); queued slabs must not alias it."""
        ingest = StreamingIngest((4, 2, 2), chunk_size=2, queue_depth=4)
        buf = np.ones((2, 2, 2), dtype=np.complex64)
        with ingest:
            ingest.push(buf)
            buf[:] = 2.0  # reuse the buffer for the "next frames"
            ingest.push(buf)
        got = drain(ingest)
        np.testing.assert_array_equal(got[0][1], np.ones((2, 2, 2)))
        np.testing.assert_array_equal(got[1][1], 2.0 * np.ones((2, 2, 2)))
        assert not np.shares_memory(got[1][1], buf)

    def test_casts_to_complex64(self):
        ingest = StreamingIngest((4, 2, 2), chunk_size=2, queue_depth=4)
        with ingest:
            ingest.push(np.ones((4, 2, 2)))  # float64 in
        got = drain(ingest)
        assert all(s.dtype == np.complex64 for _, s in got)

    def test_backpressure_blocks_producer(self, rng):
        data = rng.standard_normal((8, 2, 2)).astype(np.complex64)
        ingest = StreamingIngest((8, 2, 2), chunk_size=2, queue_depth=1)
        state = {"pushed": 0}

        def produce():
            for i in range(8):
                ingest.push(data[i:i + 1])
                state["pushed"] += 1
            ingest.finish()

        t = threading.Thread(target=produce)
        t.start()
        t.join(timeout=0.2)
        # the producer cannot finish: only ~queue_depth+1 chunks fit in flight
        assert t.is_alive()
        assert state["pushed"] < 8
        got = drain(ingest)
        t.join(timeout=5)
        assert not t.is_alive()
        assert len(got) == 4

    def test_wrong_frame_shape_raises(self):
        ingest = StreamingIngest((4, 2, 2), chunk_size=2)
        with pytest.raises(ValueError):
            ingest.push(np.zeros((2, 3, 2)))

    def test_overrun_raises(self):
        ingest = StreamingIngest((4, 2, 2), chunk_size=2)
        ingest.push(np.zeros((4, 2, 2)))
        with pytest.raises(ValueError):
            ingest.push(np.zeros((1, 2, 2)))

    def test_short_scan_finish_raises(self):
        ingest = StreamingIngest((4, 2, 2), chunk_size=2)
        ingest.push(np.zeros((2, 2, 2)))
        with pytest.raises(ValueError):
            ingest.finish()

    def test_truncated_stream_raises_in_consumer(self):
        ingest = StreamingIngest((4, 2, 2), chunk_size=2, queue_depth=4)
        ingest.push(np.zeros((2, 2, 2)))
        ingest.abort()
        with pytest.raises(ValueError, match="ended after 1"):
            drain(ingest)

    def test_push_after_consumer_abandons(self):
        ingest = StreamingIngest((4, 2, 2), chunk_size=2, queue_depth=1)
        ingest._queue.close()  # consumer tore the stream down
        with pytest.raises(QueueClosed):
            ingest.push(np.zeros((2, 2, 2)))

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            StreamingIngest((4, 2), chunk_size=2)
