"""Pipelined execution is bit-identical to the monolithic solver path.

The acceptance property of the streaming subsystem: for every executor
shape (single-worker memoized, distributed workers x shards) and every
queue depth, `pipeline=` mode reproduces the serial reconstruction bit for
bit — same volume, same memoization events — and the streaming-ingest
entry point matches the batch one.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import MemoConfig, MLRConfig, MLRSolver, PipelineConfig
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.solvers import ADMMConfig

N = 16


@pytest.fixture(scope="module")
def problem():
    geometry = LaminoGeometry((N, N, N), n_angles=N, det_shape=(N, N), tilt_deg=61.0)
    truth = brain_like(geometry.vol_shape, seed=3)
    data = simulate_data(truth, geometry, noise_level=0.05, seed=1)
    return geometry, LaminoOperators(geometry), data


def _memo():
    return MemoConfig(
        tau=0.92, warmup_iterations=1, index_train_min=8,
        index_clusters=4, index_nprobe=2,
    )


def _admm(n_outer=4):
    return ADMMConfig(n_outer=n_outer, n_inner=3, step_max_rel=4.0)


def _solve(problem, pipeline=None, n_workers=1, n_shards=1, n_outer=4):
    geometry, ops, data = problem
    cfg = MLRConfig(
        chunk_size=4, memo=_memo(), pipeline=pipeline,
        n_workers=n_workers, n_shards=n_shards,
    )
    solver = MLRSolver(geometry, cfg, admm=_admm(n_outer), ops=ops)
    return solver, solver.reconstruct(data)


@pytest.fixture(scope="module")
def serial(problem):
    return _solve(problem)[1]


class TestPipelineEquivalence:
    @pytest.mark.parametrize("queue_depth", [1, 2, 4])
    def test_bit_identical_across_queue_depths(self, problem, serial, queue_depth):
        solver, result = _solve(problem, pipeline=PipelineConfig(queue_depth=queue_depth))
        assert np.array_equal(serial.u, result.u)
        assert serial.events == result.events
        assert serial.case_counts == result.case_counts
        stats = solver.executor.pipeline_stats()
        assert stats.items > 0 and stats.sweeps > 0

    @pytest.mark.parametrize("n_workers,n_shards", [(2, 1), (2, 2), (3, 2)])
    def test_bit_identical_distributed_shapes(self, problem, serial, n_workers, n_shards):
        _, dist_serial = _solve(problem, n_workers=n_workers, n_shards=n_shards)
        _, dist_piped = _solve(
            problem, pipeline=PipelineConfig(queue_depth=2),
            n_workers=n_workers, n_shards=n_shards,
        )
        # the distributed sweep itself stays faithful to the 1x1 engine...
        assert np.array_equal(serial.u, dist_serial.u)
        # ...and pipelining it changes nothing, events included
        assert np.array_equal(dist_serial.u, dist_piped.u)
        assert dist_serial.events == dist_piped.events

    def test_memoization_active(self, serial):
        served = serial.case_counts.get("db_hit", 0) + serial.case_counts.get("cache_hit", 0)
        assert served > 0  # the equivalence is exercised on memoized sweeps

    def test_streaming_ingest_matches_batch(self, problem, serial):
        geometry, ops, data = problem
        cfg = MLRConfig(chunk_size=4, memo=_memo())
        solver = MLRSolver(geometry, cfg, admm=_admm(), ops=ops)
        ingest = solver.make_ingest()

        def produce():
            with ingest:
                for lo in range(0, N, 3):  # misaligned with chunk_size=4
                    ingest.push(data[lo:lo + 3])

        feeder = threading.Thread(target=produce)
        feeder.start()
        result = solver.reconstruct_streaming(ingest)
        feeder.join()
        assert np.array_equal(serial.u, result.u)
        assert serial.op_counts == result.op_counts

    def test_streaming_ingest_pipelined_executor(self, problem, serial):
        geometry, ops, data = problem
        cfg = MLRConfig(chunk_size=4, memo=_memo(), pipeline=PipelineConfig())
        solver = MLRSolver(geometry, cfg, admm=_admm(), ops=ops)
        ingest = solver.make_ingest()

        def produce():
            with ingest:
                ingest.push(data)  # whole scan in one block

        feeder = threading.Thread(target=produce)
        feeder.start()
        result = solver.reconstruct_streaming(ingest)
        feeder.join()
        assert np.array_equal(serial.u, result.u)

    def test_consumer_failure_unblocks_producer(self, problem):
        """If reconstruction dies mid-stream, the ingest is torn down so a
        producer blocked in push() sees QueueClosed instead of deadlocking."""
        from repro.pipeline import QueueClosed, StreamingIngest

        geometry, ops, data = problem
        solver = MLRSolver(geometry, MLRConfig(chunk_size=4, memo=_memo()),
                           admm=_admm(), ops=ops)
        # an ingest taller than the geometry: the consumer's slab placement
        # fails on the first out-of-range chunk
        ingest = StreamingIngest((2 * N, N, N), chunk_size=4, queue_depth=1)
        outcome = []

        def produce():
            try:
                for _lo in range(0, 2 * N, 4):
                    ingest.push(np.zeros((4, N, N), dtype=np.complex64))
                ingest.finish()
            except QueueClosed:
                outcome.append("unblocked")

        feeder = threading.Thread(target=produce)
        feeder.start()
        with pytest.raises(ValueError):
            solver.reconstruct_streaming(ingest)
        feeder.join(timeout=10)
        assert not feeder.is_alive()
        assert outcome == ["unblocked"]

    def test_abandoned_sweep_leaks_no_state(self, problem):
        """A pipelined sweep that dies mid-flight must not leak buffered
        queries/keys into the executor's next sweep."""
        from repro.core.distributed import DistributedMemoizedExecutor
        from repro.core.memo_engine import MemoizedExecutor
        from repro.pipeline import ArraySource, ChunkPipeline

        geometry, ops, data = problem
        for make in (
            lambda: MemoizedExecutor(ops, config=_memo(), chunk_size=4),
            lambda: DistributedMemoizedExecutor(
                ops, config=_memo(), chunk_size=4, n_workers=2, n_shards=2
            ),
        ):
            ex = make()
            ex.begin_outer(ex.config.warmup_iterations)  # past warmup
            ex.begin_inner(0)
            u = np.zeros(geometry.vol_shape, dtype=np.complex64)
            ref = ex.fu1d(u)  # a healthy sweep populates the DB

            def dying_sink(chunk, value):
                raise OSError("disk full")

            pipe = ChunkPipeline(
                source=ArraySource(u, chunk_size=4),
                sweep=lambda items: ex.sweep_stream("Fu1D", items, 4),
                sink=dying_sink,
                queue_depth=1,
            )
            with pytest.raises(OSError):
                pipe.run()
            workers = getattr(ex, "workers", [])
            assert all(not w.pending for w in workers)
            assert ex.coalesce_stats().keys == sum(
                b for b in ex.coalesce_stats().batch_sizes
            )  # only *sent* keys are counted after the dead sweep
            # and the executor still works, bit-identically
            out = ex.fu1d(u)
            assert np.array_equal(ref, out)

    def test_train_encoder_reaches_wrapped_executor(self, problem):
        geometry, ops, data = problem
        cfg = MLRConfig(chunk_size=4, memo=_memo(), pipeline=PipelineConfig())
        solver = MLRSolver(geometry, cfg, admm=_admm(n_outer=2), ops=ops)
        encoder = solver.train_encoder(data, harvest_iterations=1, n_epochs=1)
        # attribute writes pass through the pipelined wrapper to the engine
        assert solver.executor.inner.encoder is encoder
        result = solver.reconstruct(data)
        assert np.isfinite(result.u).all()
