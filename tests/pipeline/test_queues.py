"""Bounded queue semantics: backpressure, close, iteration."""

from __future__ import annotations

import threading
import time

import pytest

from repro.pipeline import BoundedQueue, QueueClosed


class TestBoundedQueue:
    def test_fifo_roundtrip(self):
        q = BoundedQueue(4)
        for i in range(3):
            q.put(i)
        assert [q.get() for _ in range(3)] == [0, 1, 2]
        assert q.stats.puts == 3 and q.stats.gets == 3
        assert q.stats.max_depth == 3

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_put_blocks_until_consumed(self):
        q = BoundedQueue(1)
        q.put("a")
        done = threading.Event()

        def producer():
            q.put("b")  # must block until the consumer pops "a"
            done.set()

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.02)
        assert not done.is_set()
        assert q.get() == "a"
        t.join(timeout=5)
        assert done.is_set()
        assert q.get() == "b"
        assert q.stats.producer_blocks >= 1

    def test_get_blocks_until_produced(self):
        q = BoundedQueue(1)
        out = []

        def consumer():
            out.append(q.get())

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.02)
        q.put("x")
        t.join(timeout=5)
        assert out == ["x"]
        assert q.stats.consumer_blocks >= 1

    def test_close_drains_then_raises(self):
        q = BoundedQueue(4)
        q.put(1)
        q.put(2)
        q.close()
        assert q.get() == 1
        assert q.get() == 2
        with pytest.raises(QueueClosed):
            q.get()

    def test_put_after_close_raises(self):
        q = BoundedQueue(2)
        q.close()
        with pytest.raises(QueueClosed):
            q.put("late")

    def test_close_unblocks_producer(self):
        q = BoundedQueue(1)
        q.put("a")
        errors = []

        def producer():
            try:
                q.put("b")
            except QueueClosed:
                errors.append("closed")

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.02)
        q.close()
        t.join(timeout=5)
        assert errors == ["closed"]

    def test_close_is_idempotent(self):
        q = BoundedQueue(2)
        q.close()
        q.close()
        assert q.closed

    def test_iteration_ends_on_close(self):
        q = BoundedQueue(8)
        for i in range(5):
            q.put(i)
        q.close()
        assert list(q) == [0, 1, 2, 3, 4]
