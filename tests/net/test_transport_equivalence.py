"""Acceptance: loopback ``tcp`` transport is bit-identical to ``inproc``.

- ``MLRSolver`` reconstructions and per-op memo hit/miss decisions match
  exactly between ``transport="inproc"`` and ``transport="tcp"`` at every
  tested workers x shards layout,
- a scheduler warm-starts through a :class:`RemoteSnapshotStore` (two
  scheduler instances = two hosts sharing one daemon),
- kill-the-daemon-mid-run fail-open: the job completes on cold compute and
  the client reconnects for the next reconstruction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MemoConfig, MLRConfig, MLRSolver
from repro.lamino import LaminoGeometry, LaminoOperators, brain_like, simulate_data
from repro.net import MemoServerDaemon, RemoteSnapshotStore
from repro.service import JobSpec, ReconstructionScheduler, ServiceConfig
from repro.solvers import ADMMConfig

ADMM = ADMMConfig(n_outer=5, n_inner=2, step_max_rel=4.0)


def memo_cfg(**over) -> MemoConfig:
    base = dict(
        tau=0.92, warmup_iterations=1, index_train_min=4, index_clusters=2,
        index_nprobe=2,
    )
    base.update(over)
    return MemoConfig(**base)


@pytest.fixture(scope="module")
def problem():
    n = 16
    g = LaminoGeometry((n, n, n), n_angles=12, det_shape=(n, n), tilt_deg=61.0)
    ops = LaminoOperators(g)
    truth = brain_like(g.vol_shape, seed=7)
    d = simulate_data(truth, g, noise_level=0.03, seed=1)
    return g, ops, d


def run_solver(g, ops, d, memo: MemoConfig, n_workers=1, n_shards=1):
    """Solve and return (solver, result) — callers read stats before the
    transport is torn down (a closed client reads fail-open zeros)."""
    cfg = MLRConfig(chunk_size=4, memo=memo, n_workers=n_workers, n_shards=n_shards)
    solver = MLRSolver(g, cfg, admm=ADMM, ops=ops)
    return solver, solver.reconstruct(d)


def event_view(result):
    return [
        (e.outer, e.inner, e.op, e.chunk, e.case, e.similarity, e.worker, e.shard)
        for e in result.events
    ]


class TestBitIdentity:
    @pytest.mark.parametrize("n_workers,n_shards", [(1, 1), (2, 2), (3, 2)])
    def test_solver_identical_across_transports(self, problem, n_workers, n_shards):
        g, ops, d = problem
        _ref_solver, ref = run_solver(
            g, ops, d, memo_cfg(), n_workers=n_workers, n_shards=n_shards
        )
        with MemoServerDaemon(n_shards=n_shards, memo=memo_cfg()) as srv:
            solver, res = run_solver(
                g, ops, d,
                memo_cfg(transport="tcp", server_address=srv.address),
                n_workers=n_workers, n_shards=n_shards,
            )
            assert solver.memo_executor.remote
            assert solver.memo_executor.router.net_stats.degraded_queries == 0
        np.testing.assert_array_equal(ref.u, res.u)
        assert event_view(ref) == event_view(res)  # every hit/miss decision
        assert ref.case_counts == res.case_counts
        assert ref.op_counts == res.op_counts

    def test_db_stats_and_entries_match(self, problem):
        g, ops, d = problem
        ref_solver, _ = run_solver(g, ops, d, memo_cfg(), n_workers=2, n_shards=2)
        with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as srv:
            solver, _ = run_solver(
                g, ops, d, memo_cfg(transport="tcp", server_address=srv.address),
                n_workers=2, n_shards=2,
            )
            for op in ("Fu1D", "Fu2D", "Fu2D*", "Fu1D*"):
                assert (
                    solver.memo_executor.db_stats(op).as_dict()
                    == ref_solver.memo_executor.db_stats(op).as_dict()
                )
                assert (
                    solver.memo_executor.db_entries(op)
                    == ref_solver.memo_executor.db_entries(op)
                )
            assert (
                solver.memo_executor.per_shard_db_stats()[0].as_dict()
                == ref_solver.memo_executor.per_shard_db_stats()[0].as_dict()
            )

    def test_value_mode_bytes_also_identical(self, problem):
        g, ops, d = problem
        _s, ref = run_solver(g, ops, d, memo_cfg(db_value_mode="bytes"))
        with MemoServerDaemon(
            n_shards=1, memo=memo_cfg(db_value_mode="bytes")
        ) as srv:
            _s2, res = run_solver(
                g, ops, d,
                memo_cfg(db_value_mode="bytes", transport="tcp",
                         server_address=srv.address),
            )
        np.testing.assert_array_equal(ref.u, res.u)
        assert event_view(ref) == event_view(res)

    def test_warm_start_via_remote_snapshot_matches_local(self, problem):
        """memo_snapshot loads push to the daemon; a second run over the
        same daemon behaves exactly like a locally warm-started run."""
        g, ops, d = problem
        base_solver, _ = run_solver(g, ops, d, memo_cfg())
        tree = base_solver.memo_executor.memo_state()

        ref_solver = MLRSolver(
            g,
            MLRConfig(chunk_size=4, memo=memo_cfg(), memo_snapshot=tree, n_shards=2),
            admm=ADMM, ops=ops,
        )
        ref = ref_solver.reconstruct(d)

        with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as srv:
            cfg = MLRConfig(
                chunk_size=4,
                memo=memo_cfg(transport="tcp", server_address=srv.address),
                memo_snapshot=tree,
                n_shards=2,
            )
            solver = MLRSolver(g, cfg, admm=ADMM, ops=ops)
            assert srv.router.entries() > 0  # snapshot pushed at construction
            res = solver.reconstruct(d)
            solver.close()
        np.testing.assert_array_equal(ref.u, res.u)
        assert event_view(ref) == event_view(res)


class TestSchedulerRemoteTier:
    def test_two_schedulers_share_one_daemon(self, problem):
        """Host A's scheduler absorbs into the daemon; host B's scheduler —
        a different process in real life — warm-starts from it."""
        g, _ops, d = problem
        job_cfg = lambda: MLRConfig(chunk_size=4, memo=memo_cfg())  # noqa: E731

        with MemoServerDaemon(n_shards=2, memo=memo_cfg()) as srv:
            svc = ServiceConfig(
                n_workers=1, memo_transport="tcp", memo_server=srv.address
            )
            with ReconstructionScheduler(ServiceConfig(n_workers=1)) as cold_sched:
                cold = cold_sched.submit(
                    JobSpec("cold", g, d, config=job_cfg(), admm=ADMM)
                )
                cold.wait()

            sched_a = ReconstructionScheduler(svc)
            job_a = sched_a.submit(JobSpec("scan-a", g, d, config=job_cfg(), admm=ADMM))
            job_a.wait()
            sched_a.shutdown()
            assert srv.router.entries() > 0  # absorbed into the daemon

            sched_b = ReconstructionScheduler(
                ServiceConfig(n_workers=1, memo_transport="tcp",
                              memo_server=srv.address)
            )
            job_b = sched_b.submit(JobSpec("scan-b", g, d, config=job_cfg(), admm=ADMM))
            job_b.wait()
            sched_b.shutdown()

        assert any(ev.kind == "warm_start" for ev in job_b.events)
        assert not any(ev.kind == "warm_start" for ev in job_a.events)
        cold_rate = cold.memo_delta.hit_rate
        warm_rate = job_b.memo_delta.hit_rate
        assert warm_rate > cold_rate, (warm_rate, cold_rate)

    def test_remote_store_pull_seeds_solver_config(self, problem):
        """RemoteSnapshotStore.pull feeds MLRConfig(memo_snapshot=...) — the
        cross-host warm start without any scheduler at all."""
        g, ops, d = problem
        with MemoServerDaemon(n_shards=1, memo=memo_cfg()) as srv:
            solver, _ = run_solver(
                g, ops, d, memo_cfg(transport="tcp", server_address=srv.address)
            )
            store = RemoteSnapshotStore(srv.address)
            tree = store.pull()
            assert tree is not None
            store.close()
        warm = MLRSolver(
            g, MLRConfig(chunk_size=4, memo=memo_cfg(), memo_snapshot=tree),
            admm=ADMM, ops=ops,
        )
        assert warm.memo_executor.db_entries_total() > 0
        res = warm.reconstruct(d)
        assert res.case_counts.get("db_hit", 0) + res.case_counts.get(
            "cache_hit", 0
        ) > 0

    def test_incompatible_seed_falls_back_to_cold_not_failed(self, problem):
        """A shared tier the job's memo config cannot accept (here: a tau
        mismatch) means a cold start with a seed_failed event — zero
        reconstruction work must never be thrown away over a tier seed."""
        from repro.service import JobState

        g, _ops, d = problem
        with MemoServerDaemon(n_shards=1, memo=memo_cfg()) as srv:
            sched = ReconstructionScheduler(
                ServiceConfig(n_workers=1, memo_transport="tcp",
                              memo_server=srv.address)
            )
            warm = sched.submit(
                JobSpec("populate", g, d,
                        config=MLRConfig(chunk_size=4, memo=memo_cfg()),
                        admm=ADMM)
            )
            warm.wait()
            mismatched = sched.submit(
                JobSpec("tau-mismatch", g, d,
                        config=MLRConfig(chunk_size=4, memo=memo_cfg(tau=0.5)),
                        admm=ADMM)
            )
            mismatched.wait()
            sched.shutdown()
        assert warm.state is JobState.DONE
        assert mismatched.state is JobState.DONE
        assert mismatched.result is not None
        assert any(ev.kind == "seed_failed" for ev in mismatched.events)
        assert not any(ev.kind == "warm_start" for ev in mismatched.events)

    def test_rejected_absorb_does_not_fail_the_job(self, problem):
        """A daemon-side tier rejection after a successful reconstruction
        stays a tier event (absorb_failed), never a FAILED job."""
        from repro.service import JobState, SharedMemoService

        class _RejectingStore:
            def pull(self):
                return None

            def push(self, _tree):
                raise ValueError("pushed keys come from a different encoder")

            def close(self):
                pass

        g, _ops, d = problem
        sched = ReconstructionScheduler(
            ServiceConfig(n_workers=1),
            memo_service=SharedMemoService(store=_RejectingStore()),
        )
        job = sched.submit(
            JobSpec("rejected-absorb", g, d,
                    config=MLRConfig(chunk_size=4, memo=memo_cfg()), admm=ADMM)
        )
        job.wait()
        sched.shutdown()
        assert job.state is JobState.DONE
        assert job.result is not None
        assert any(ev.kind == "absorb_failed" for ev in job.events)

    def test_unreachable_daemon_jobs_still_complete(self, problem):
        g, _ops, d = problem
        with MemoServerDaemon(n_shards=1, memo=memo_cfg()) as srv:
            addr = srv.address
        sched = ReconstructionScheduler(
            ServiceConfig(n_workers=1, memo_transport="tcp", memo_server=addr)
        )
        job = sched.submit(
            JobSpec("no-tier", g, d,
                    config=MLRConfig(chunk_size=4, memo=memo_cfg()), admm=ADMM)
        )
        job.wait()
        sched.shutdown()
        assert job.result is not None
        assert np.isfinite(job.result.u).all()


class TestFailOpen:
    def test_kill_daemon_mid_run_completes_cold_then_reconnects(self, problem):
        """The acceptance scenario: the daemon dies while a reconstruction
        is in flight.  The job finishes (degraded to cold compute, same
        shape of result), and the same client reconnects for the next
        reconstruction once a daemon is back on that address."""
        g, ops, d = problem
        srv = MemoServerDaemon(n_shards=2, memo=memo_cfg())
        host, port = srv.address
        cfg = MLRConfig(
            chunk_size=4,
            memo=memo_cfg(transport="tcp", server_address=(host, port)),
            n_workers=2, n_shards=2,
        )
        solver = MLRSolver(g, cfg, admm=ADMM, ops=ops)
        client = solver.memo_executor.router
        client.backoff_initial_s = 0.0  # reconnect eagerly for the test

        killed_at = 2

        def kill_mid_run(it, _u, _info):
            if it == killed_at - 1:
                srv.close()  # sweeps of iteration `killed_at` hit a dead server

        result = solver.reconstruct(d, callback=kill_mid_run)

        # the run completed on cold compute — no exception, finite output
        assert np.isfinite(result.u).all()
        ns = client.net_stats
        assert ns.degraded_queries > 0 or ns.degraded_insert_batches > 0
        # decisions up to the kill are untouched; after it, no db hits
        post = [e for e in result.events if e.outer > killed_at]
        assert post and all(e.case != "db_hit" for e in post)

        # a daemon returns on the same address: the next reconstruction's
        # sweeps reconnect transparently and memo traffic resumes
        with MemoServerDaemon(host=host, port=port, n_shards=2, memo=memo_cfg()):
            before = client.net_stats.connects
            client.reset_backoff()  # don't race the exponential window
            res2 = solver.reconstruct(d)
            assert client.net_stats.connects == before + 1
            assert client.net_stats.degraded_queries == ns.degraded_queries
            assert solver.memo_executor.db_entries_total() > 0
            assert np.isfinite(res2.u).all()
        solver.close()
