"""MemoServerDaemon + RemoteMemoClient: service behavior over loopback TCP.

Covers the daemon's batched service (query/insert/stats/snapshot), hostile
clients (garbage, truncation, version skew — typed errors, never hangs),
concurrent clients, fail-open client degradation and reconnect, and the
daemon's snapshot persistence.
"""

from __future__ import annotations

import socket
import struct
import threading
import zlib

import numpy as np
import pytest

from repro.core.config import MemoConfig
from repro.core.memo_engine import make_db_factory
from repro.core.memo_shard import MemoShardRouter, ShardInsert, ShardQuery
from repro.net import (
    MemoServerDaemon,
    ProtocolError,
    RemoteError,
    RemoteMemoClient,
    TransportUnavailable,
    VersionMismatch,
)
from repro.net.wire import (
    MSG_ERROR,
    MSG_HELLO,
    PROTOCOL_VERSION,
    FrameReader,
    encode_frame,
    send_frame,
)

MEMO = MemoConfig(index_train_min=4, index_clusters=2, index_nprobe=2)


@pytest.fixture()
def daemon():
    with MemoServerDaemon(n_shards=2, memo=MEMO) as srv:
        yield srv


@pytest.fixture()
def client(daemon):
    c = RemoteMemoClient(daemon.address, expect_tau=MEMO.tau,
                         expect_value_mode=MEMO.db_value_mode, n_shards_hint=2)
    yield c
    c.close()


def _mk_items(rng, n, op="Fu1D", dim=12, shape=(4, 4)):
    out = []
    for i in range(n):
        key = rng.normal(size=dim).astype(np.float32)
        val = (rng.normal(size=shape) + 1j * rng.normal(size=shape)).astype(np.complex64)
        out.append(ShardInsert(op, i, key, val, meta=(float(i) + 1.0, 1j * i)))
    return out


class TestService:
    def test_matches_inproc_router_outcomes_and_stats(self, daemon, client, rng):
        """The daemon answers exactly like a local MemoShardRouter fed the
        same traffic — values, similarities, ids, stats."""
        local = MemoShardRouter(2, make_db_factory(MEMO))
        inserts = _mk_items(rng, 6)
        queries = [ShardQuery(i.op, i.location, i.key) for i in inserts]
        probe = rng.normal(size=12).astype(np.float32)
        queries.append(ShardQuery("Fu1D", 0, probe))

        local.insert_batch(inserts)
        client.insert_batch(inserts)
        remote = client.query_batch(queries)
        expected = local.query_batch(queries)
        assert len(remote) == len(expected)
        for r, e in zip(remote, expected):
            assert r.hit == e.hit
            assert r.similarity == e.similarity
            assert r.matched_id == e.matched_id
            assert r.n_entries == e.n_entries
            assert r.stored_meta == e.stored_meta
            if e.hit:
                np.testing.assert_array_equal(r.value, e.value)
        assert client.stats().as_dict() == local.stats().as_dict()
        assert client.entries() == local.entries()
        assert client.per_shard_entries() == local.per_shard_entries()

    def test_snapshot_push_pull_roundtrip(self, daemon, client, rng):
        inserts = _mk_items(rng, 5)
        client.insert_batch(inserts)
        tree = client.state_dict()
        assert tree["layout"] == "sharded" and tree["n_shards"] == 2

        with MemoServerDaemon(n_shards=3, memo=MEMO) as other:
            c2 = RemoteMemoClient(other.address)
            assert c2.push_state(tree)
            # partitions re-route onto the 3-shard daemon by location
            assert c2.entries() == client.entries()
            out = c2.query_batch([ShardQuery("Fu1D", 2, inserts[2].key)])
            assert out[0].hit and out[0].similarity > 0.99
            c2.close()

    def test_push_with_wrong_tau_rejected(self, daemon, client):
        mismatched = MemoConfig(tau=0.5, index_train_min=4, index_clusters=2)
        local = MemoShardRouter(1, make_db_factory(mismatched))
        local.db_for("Fu1D", 0, 4)
        tree = local.state_dict()
        tree["layout"] = "sharded"  # state_dict already carries it
        with pytest.raises(ValueError, match="tau"):
            client.push_state(tree)

    def test_push_from_conflicting_encoder_rejected(self, daemon, client):
        base = {"layout": "single", "partitions": [],
                "encoder": {"kind": "CNNKeyEncoder", "dim": 60, "weights": "aaa"}}
        assert client.push_state(base)
        conflicting = dict(base, encoder={"kind": "CNNKeyEncoder", "dim": 60,
                                          "weights": "bbb"})
        with pytest.raises(ValueError, match="encoder"):
            client.push_state(conflicting)

    def test_concurrent_clients_consistent_totals(self, daemon, rng):
        n_clients, per_client = 4, 8
        seeds = np.random.SeedSequence(5).spawn(n_clients)
        errs = []

        def run(seed):
            try:
                r = np.random.default_rng(seed)
                c = RemoteMemoClient(daemon.address)
                items = [
                    ShardInsert("Fu1D", int(r.integers(0, 16)),
                                r.normal(size=8).astype(np.float32),
                                r.normal(size=4).astype(np.complex64))
                    for _ in range(per_client)
                ]
                c.insert_batch(items)
                c.query_batch([ShardQuery(i.op, i.location, i.key) for i in items])
                c.flush()
                c.close()
            except Exception as exc:  # noqa: BLE001 — surfaced via errs
                errs.append(exc)

        threads = [threading.Thread(target=run, args=(s,)) for s in seeds]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errs
        st = daemon.router.stats()
        assert st.inserts == n_clients * per_client
        assert st.queries == n_clients * per_client

    def test_daemon_persistence_roundtrip(self, tmp_path, rng):
        snap = tmp_path / "tier"
        with MemoServerDaemon(n_shards=2, memo=MEMO, snapshot_path=snap) as srv:
            c = RemoteMemoClient(srv.address)
            c.insert_batch(_mk_items(rng, 4))
            c.flush()
            c.close()
        # close() persisted; a new daemon warm-starts from the same path
        with MemoServerDaemon(n_shards=2, memo=MEMO, snapshot_path=snap) as srv2:
            c = RemoteMemoClient(srv2.address)
            assert c.entries() == 4
            c.close()


class TestHostileClients:
    def _raw(self, daemon):
        return socket.create_connection(daemon.address, timeout=5.0)

    def test_version_skew_handshake_fails_fast(self, daemon):
        with self._raw(daemon) as sock:
            frame = bytearray(
                encode_frame(MSG_HELLO, 0, {"version": PROTOCOL_VERSION + 9})
            )
            sock.sendall(bytes(frame))
            msg_type, _rid, body = FrameReader(sock).read_frame()
            assert msg_type == MSG_ERROR
            assert body["kind"] == "VersionMismatch"
            assert "upgrade" in body["message"]
            assert sock.recv(1) == b""  # server closed the connection

    def test_frame_version_byte_skew_fails_fast(self, daemon):
        with self._raw(daemon) as sock:
            frame = bytearray(encode_frame(MSG_HELLO, 0, {"version": 1}))
            frame[4] = 77  # header version byte
            sock.sendall(bytes(frame))
            msg_type, _rid, body = FrameReader(sock).read_frame()
            assert msg_type == MSG_ERROR and body["kind"] == "VersionMismatch"
            assert sock.recv(1) == b""

    def test_garbage_bytes_get_typed_error_then_close(self, daemon):
        with self._raw(daemon) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 64)
            msg_type, _rid, body = FrameReader(sock).read_frame()
            assert msg_type == MSG_ERROR and body["kind"] == "FrameError"
            assert sock.recv(1) == b""

    def test_corrupted_frame_gets_checksum_error(self, daemon):
        with self._raw(daemon) as sock:
            frame = bytearray(encode_frame(MSG_HELLO, 0, {"version": 1, "pad": 0}))
            frame[-1] ^= 0xFF
            sock.sendall(bytes(frame))
            msg_type, _rid, body = FrameReader(sock).read_frame()
            assert msg_type == MSG_ERROR and body["kind"] == "ChecksumError"

    def test_oversize_declared_frame_rejected(self, daemon):
        with self._raw(daemon) as sock:
            header = struct.Struct("<4sBBHQQI").pack(
                b"mLRn", PROTOCOL_VERSION, MSG_HELLO, 0, 0, 1 << 62,
                zlib.crc32(b"") & 0xFFFFFFFF,
            )
            sock.sendall(header)
            msg_type, _rid, body = FrameReader(sock).read_frame()
            assert msg_type == MSG_ERROR and body["kind"] == "FrameError"

    def test_mid_frame_disconnect_does_not_wedge_daemon(self, daemon):
        sock = self._raw(daemon)
        frame = encode_frame(MSG_HELLO, 0, {"version": 1, "blob": b"x" * 4096})
        sock.sendall(frame[: len(frame) // 2])
        sock.close()
        # daemon still serves a well-behaved client afterwards
        c = RemoteMemoClient(daemon.address)
        assert c.connected
        assert c.entries() == 0
        c.close()

    def test_request_before_hello_rejected(self, daemon):
        with self._raw(daemon) as sock:
            send_frame(sock, 99, 5, {"queries": []})
            msg_type, _rid, body = FrameReader(sock).read_frame()
            assert msg_type == MSG_ERROR and body["kind"] == "MessageError"


class TestClientResilience:
    def test_client_version_mismatch_raises_even_fail_open(self, daemon, monkeypatch):
        import repro.net.client as client_mod

        monkeypatch.setattr(client_mod, "PROTOCOL_VERSION", PROTOCOL_VERSION + 1)
        with pytest.raises(VersionMismatch):
            RemoteMemoClient(daemon.address, fail_open=True)

    def test_tau_mismatch_raises_even_fail_open(self, daemon):
        with pytest.raises(ValueError, match="tau"):
            RemoteMemoClient(daemon.address, expect_tau=0.5, fail_open=True)

    def test_value_mode_mismatch_raises(self, daemon):
        with pytest.raises(ValueError, match="value_mode"):
            RemoteMemoClient(daemon.address, expect_value_mode="bytes")

    def test_dead_server_fail_open_degrades_and_counts(self, rng):
        with MemoServerDaemon(n_shards=1, memo=MEMO) as srv:
            addr = srv.address
        c = RemoteMemoClient(addr, fail_open=True, n_shards_hint=3)
        q = [ShardQuery("Fu1D", i, rng.normal(size=4).astype(np.float32))
             for i in range(5)]
        out = c.query_batch(q)
        assert [o.hit for o in out] == [False] * 5
        assert all(o.similarity == -2.0 for o in out)
        assert c.insert_batch(_mk_items(rng, 2)) == [-1, -1]
        assert c.stats().queries == 0
        assert c.state_dict()["partitions"] == []
        assert not c.push_state({"layout": "single", "partitions": []})
        ns = c.net_stats
        assert ns.degraded_query_batches == 1
        assert ns.degraded_queries == 5
        assert ns.degraded_insert_batches == 1
        assert c.shard_of(5) == 5 % 3  # labeling still deterministic
        c.close()

    def test_dead_server_fail_closed_raises(self):
        with MemoServerDaemon(n_shards=1, memo=MEMO) as srv:
            addr = srv.address
        # depending on teardown timing the failure surfaces at the eager
        # construction-time connect or on the first call — never silently
        with pytest.raises((TransportUnavailable, OSError, ProtocolError)):
            c = RemoteMemoClient(addr, fail_open=False)
            try:
                c.query_batch(
                    [ShardQuery("Fu1D", 0, np.ones(4, dtype=np.float32))]
                )
            finally:
                c.close()

    def test_reconnects_after_server_restart(self, rng):
        with MemoServerDaemon(n_shards=1, memo=MEMO) as srv:
            host, port = srv.address
            c = RemoteMemoClient((host, port), backoff_initial_s=0.0)
            c.insert_batch(_mk_items(rng, 1))
            c.flush()
            assert c.connected
        # daemon gone: degraded
        assert c.query_batch(
            [ShardQuery("Fu1D", 0, np.ones(12, dtype=np.float32))]
        )[0].hit is False
        assert not c.connected
        # daemon back on the same port: next call reconnects transparently
        with MemoServerDaemon(host=host, port=port, n_shards=1, memo=MEMO):
            deadline = 50
            while not c.connected and deadline:
                c.stats()
                deadline -= 1
            assert c.connected
            assert c.net_stats.connects == 2
        c.close()

    def test_pipelined_inserts_drain_before_sync_requests(self, daemon, client, rng):
        for _batch in range(3):
            client.insert_batch(_mk_items(rng, 2))
        assert client.net_stats.pipelined_inserts == 6
        # the sync stats request drains every outstanding ack first
        assert client.entries() == 6
        assert client.net_stats.drained_acks == 3

    def test_conflicting_client_encoders_rejected_once_tier_has_data(
        self, daemon, rng
    ):
        """The hot-path provenance gate: the first client to *insert* pins
        the tier's encoder fingerprint; from then on a client keyed by a
        different training is refused at connect — even fail-open — so two
        hosts can never co-mingle incompatible keys through plain
        insert/query traffic.  A handshake alone pins nothing: an empty
        tier must not get locked to a client that never contributed data."""
        fp_a = {"kind": "CNNKeyEncoder", "dim": 60, "weights": "training-1"}
        fp_b = {"kind": "CNNKeyEncoder", "dim": 60, "weights": "training-2"}
        c1 = RemoteMemoClient(daemon.address, encoder_fingerprint=fp_a)
        assert c1.connected
        # no data yet: a differently-keyed client still connects fine
        probe = RemoteMemoClient(daemon.address, encoder_fingerprint=fp_b)
        assert probe.connected
        probe.close()
        # first insert pins training-1
        c1.insert_batch(_mk_items(rng, 1))
        c1.flush()
        with pytest.raises(ValueError, match="different encoder"):
            RemoteMemoClient(daemon.address, encoder_fingerprint=fp_b,
                             fail_open=True)
        # a same-fingerprint client is welcome, and the first stays usable
        c3 = RemoteMemoClient(daemon.address, encoder_fingerprint=dict(fp_a))
        assert c3.connected and c1.entries() == 1
        c1.close()
        c3.close()

    def test_conflicting_encoder_connected_before_pin_blocked_per_request(
        self, daemon, rng
    ):
        """A client that handshook before the tier was pinned must still be
        stopped at its first data request after a conflicting pin — the
        window between handshake and pin is not a mixing loophole."""
        fp_a = {"kind": "CNNKeyEncoder", "dim": 60, "weights": "training-1"}
        fp_b = {"kind": "CNNKeyEncoder", "dim": 60, "weights": "training-2"}
        early = RemoteMemoClient(daemon.address, encoder_fingerprint=fp_b)
        assert early.connected  # tier still unpinned
        pinner = RemoteMemoClient(daemon.address, encoder_fingerprint=fp_a)
        pinner.insert_batch(_mk_items(rng, 1))
        pinner.flush()
        with pytest.raises(RemoteError, match="different encoder"):
            early.query_batch(
                [ShardQuery("Fu1D", 0, np.ones(12, dtype=np.float32))]
            )
        early.close()
        pinner.close()

    def test_remote_app_error_does_not_drop_connection(self, daemon, client):
        with pytest.raises(ValueError):
            client.push_state({"layout": "bogus"})
        assert client.connected
        assert client.entries() == 0  # connection still serviceable
