"""RetryPolicy / BackoffState / CircuitBreaker + replica-address parsing.

The jitter regression (satellite of the fault-tolerance PR): every delay
stays within ``[base, cap]``, the cap is *hard* (no attempt count blows
past it), schedules are reproducible per seed and **non-identical across
differently-seeded clients** — the no-thundering-herd property.
"""

from __future__ import annotations

import pytest

from repro.net.policy import (
    CIRCUIT_CLOSED,
    CIRCUIT_HALF_OPEN,
    CIRCUIT_OPEN,
    BackoffState,
    CircuitBreaker,
    RetryPolicy,
    seed_from_name,
)
from repro.net.wire import parse_address, parse_address_list


class TestBackoff:
    def test_delays_capped_and_floored(self):
        policy = RetryPolicy(backoff_initial_s=0.05, backoff_max_s=0.4)
        state = policy.backoff(seed=1)
        delays = [state.next_delay() for _ in range(50)]
        assert all(0.05 <= d <= 0.4 for d in delays)
        # the schedule actually grows toward the cap, then saturates there
        assert max(delays) > 0.2

    def test_reproducible_per_seed(self):
        policy = RetryPolicy()
        a = [policy.backoff(seed=9).next_delay() for _ in range(1)]
        s1, s2 = policy.backoff(seed=9), policy.backoff(seed=9)
        assert [s1.next_delay() for _ in range(10)] == [
            s2.next_delay() for _ in range(10)
        ]

    def test_seeded_clients_do_not_thunder_in_lockstep(self):
        """Differently-named clients draw different jitter schedules."""
        policy = RetryPolicy(backoff_initial_s=0.01, backoff_max_s=2.0)
        schedules = []
        for name in ("client-a@h:1", "client-b@h:1", "client-c@h:1"):
            state = policy.backoff(seed_from_name(name))
            schedules.append(tuple(state.next_delay() for _ in range(8)))
        assert len(set(schedules)) == len(schedules)

    def test_live_overrides_respected(self):
        """The memo client's historically mutable backoff knobs keep
        working: overrides passed per-call re-bound the schedule."""
        state = RetryPolicy(backoff_initial_s=0.05, backoff_max_s=5.0).backoff(3)
        for _ in range(20):
            assert state.next_delay(base_s=0.0, cap_s=0.1) <= 0.1
        assert state.next_delay(base_s=7.0, cap_s=9.0) >= 7.0

    def test_reset_restarts_schedule(self):
        state = RetryPolicy(backoff_initial_s=0.1, backoff_max_s=10.0).backoff(5)
        first = [state.next_delay() for _ in range(5)]
        state.reset()
        again = [state.next_delay() for _ in range(5)]
        assert again[0] == pytest.approx(0.1)  # back at the base
        assert state.attempts == 5

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="deadline_s"):
            RetryPolicy(deadline_s=0)
        with pytest.raises(ValueError, match="backoff_max_s"):
            RetryPolicy(backoff_initial_s=1.0, backoff_max_s=0.5)
        with pytest.raises(ValueError, match="failure_threshold"):
            RetryPolicy(failure_threshold=0)


class TestCircuitBreaker:
    def make(self, **over):
        t = [0.0]
        policy = RetryPolicy(failure_threshold=3, reset_timeout_s=1.0, **over)
        return policy.breaker(clock=lambda: t[0]), t

    def test_opens_after_threshold(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CIRCUIT_CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CIRCUIT_OPEN
        assert not breaker.allow()

    def test_half_open_single_probe_then_close(self):
        breaker, t = self.make()
        for _ in range(3):
            breaker.record_failure()
        t[0] = 1.5  # past reset_timeout_s
        assert breaker.state == CIRCUIT_HALF_OPEN
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # second caller refused while probing
        breaker.record_success()
        assert breaker.state == CIRCUIT_CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker, t = self.make()
        for _ in range(3):
            breaker.record_failure()
        t[0] = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CIRCUIT_OPEN
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CIRCUIT_CLOSED  # streaks don't accumulate

    def test_force_probe_collapses_open_window(self):
        breaker, _ = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        breaker.force_probe()
        assert breaker.state == CIRCUIT_HALF_OPEN
        assert breaker.allow()

    def test_transition_count(self):
        breaker, t = self.make()
        for _ in range(3):
            breaker.record_failure()  # -> open
        t[0] = 1.5
        breaker.allow()  # -> half-open
        breaker.record_success()  # -> closed
        assert breaker.transitions == 3


class TestAddressParsing:
    def test_single_forms(self):
        assert parse_address_list("h:1") == [("h", 1)]
        assert parse_address_list(("h", 1)) == [("h", 1)]
        assert parse_address_list(["h:1"]) == [("h", 1)]

    def test_comma_list_and_mixed(self):
        assert parse_address_list("a:1, b:2,c:3") == [("a", 1), ("b", 2), ("c", 3)]
        assert parse_address_list(["a:1", ("b", 2)]) == [("a", 1), ("b", 2)]

    def test_error_names_bad_element(self):
        with pytest.raises(ValueError, match=r"bad address element 'b'"):
            parse_address_list("a:1,b")
        with pytest.raises(ValueError, match=r"bad address element"):
            parse_address_list([("a", 1), 42])

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_address_list("a:1,a:1")
        with pytest.raises(ValueError, match="empty"):
            parse_address_list(" , ")
        with pytest.raises(ValueError, match="empty"):
            parse_address_list([])

    def test_single_pair_is_not_two_addresses(self):
        # the classic ambiguity: ("host", 9000) is ONE address
        assert parse_address_list(("memo-host", 9000)) == [("memo-host", 9000)]

    def test_parse_address_still_rejects_ipv6_strings(self):
        with pytest.raises(ValueError):
            parse_address("::1")
