"""Wire protocol: framing, payload codec, and hostile-input behavior.

The protocol's contract is that malformed input — truncated, corrupted,
garbage, or version-skewed frames — raises a *typed* ProtocolError
subclass, never hangs, and never silently misparses.
"""

from __future__ import annotations

import io
import struct
import zlib

import numpy as np
import pytest

from repro.core.memo_db import MemoDBStats, QueryOutcome
from repro.core.memo_shard import ShardInsert, ShardQuery
from repro.net.wire import (
    MSG_QUERY,
    PROTOCOL_VERSION,
    ChecksumError,
    ConnectionClosed,
    FrameError,
    FrameReader,
    MessageError,
    ProtocolError,
    TruncatedFrame,
    VersionMismatch,
    encode_frame,
    inserts_from_wire,
    inserts_to_wire,
    outcomes_from_wire,
    outcomes_to_wire,
    pack_obj,
    parse_address,
    queries_from_wire,
    queries_to_wire,
    stats_from_wire,
    stats_to_wire,
    unpack_obj,
)


class _StreamSock:
    """Minimal socket stand-in: recv() drains a byte string."""

    def __init__(self, data: bytes, chunk: int | None = None) -> None:
        self._buf = io.BytesIO(data)
        self._chunk = chunk

    def recv(self, n: int) -> bytes:
        if self._chunk is not None:
            n = min(n, self._chunk)
        return self._buf.read(n)


def read_one(data: bytes, chunk: int | None = None):
    return FrameReader(_StreamSock(data, chunk)).read_frame()


class TestPayloadCodec:
    @pytest.mark.parametrize(
        "obj",
        [
            None,
            True,
            False,
            0,
            -(2**62),
            2**62,
            3.5,
            float("inf"),
            2.5 - 1.5j,
            "",
            "snake — unicode ✓",
            b"",
            b"\x00\xffraw",
            [],
            [1, "two", None, [3.0]],
            {},
            {"a": 1, "b": {"c": [True, b"x"]}},
        ],
    )
    def test_scalar_roundtrip(self, obj):
        assert unpack_obj(pack_obj(obj)) == obj

    def test_tuple_roundtrips_as_list(self):
        assert unpack_obj(pack_obj((1, 2))) == [1, 2]

    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(6, dtype=np.float32).reshape(2, 3),
            np.array(2.5 + 1j, dtype=np.complex64),
            np.zeros((0, 4), dtype=np.int64),
            np.asfortranarray(np.arange(12).reshape(3, 4)),
        ],
    )
    def test_array_roundtrip(self, arr):
        out = unpack_obj(pack_obj({"a": arr}))["a"]
        np.testing.assert_array_equal(out, np.ascontiguousarray(arr))
        assert out.dtype == arr.dtype

    def test_numpy_scalars_coerce(self):
        out = unpack_obj(pack_obj({"i": np.int32(7), "f": np.float64(2.5),
                                   "c": np.complex64(1 + 2j), "b": np.bool_(True)}))
        assert out == {"i": 7, "f": 2.5, "c": (1 + 2j), "b": True}

    def test_unserializable_raises_typed(self):
        with pytest.raises(MessageError):
            pack_obj(object())
        with pytest.raises(MessageError):
            pack_obj({1: "non-str key"})
        with pytest.raises(MessageError):
            pack_obj(2**70)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(MessageError):
            unpack_obj(pack_obj(1) + b"x")

    def test_truncated_payloads_raise_typed(self):
        raw = pack_obj({"k": [1, 2.5, "str", b"bytes", np.arange(3)]})
        for cut in range(len(raw)):
            with pytest.raises(MessageError):
                unpack_obj(raw[:cut])

    def test_fuzzed_random_payloads_never_hang_or_crash(self):
        rng = np.random.default_rng(42)
        for _ in range(200):
            blob = rng.integers(0, 256, size=int(rng.integers(1, 80)),
                                dtype=np.uint8).tobytes()
            try:
                unpack_obj(blob)
            except MessageError:
                pass  # the only acceptable failure mode


class TestFraming:
    def test_frame_roundtrip(self):
        body = {"queries": [{"op": "Fu1D", "key": np.arange(4, dtype=np.float32)}]}
        frame = encode_frame(MSG_QUERY, 17, body)
        msg_type, rid, out = read_one(frame)
        assert (msg_type, rid) == (MSG_QUERY, 17)
        np.testing.assert_array_equal(out["queries"][0]["key"],
                                      body["queries"][0]["key"])

    def test_dribbled_bytes_reassemble(self):
        frame = encode_frame(MSG_QUERY, 3, {"x": list(range(50))})
        msg_type, rid, out = read_one(frame, chunk=1)  # 1 byte per recv
        assert (rid, out["x"][-1]) == (3, 49)

    def test_two_frames_back_to_back(self):
        data = encode_frame(1, 1, "first") + encode_frame(2, 2, "second")
        reader = FrameReader(_StreamSock(data))
        assert reader.read_frame()[2] == "first"
        assert reader.read_frame()[2] == "second"
        with pytest.raises(ConnectionClosed):
            reader.read_frame()

    def test_clean_eof_is_connection_closed(self):
        with pytest.raises(ConnectionClosed):
            read_one(b"")

    def test_truncated_header_raises(self):
        frame = encode_frame(MSG_QUERY, 1, None)
        with pytest.raises(TruncatedFrame):
            read_one(frame[:10])

    def test_truncated_payload_raises(self):
        frame = encode_frame(MSG_QUERY, 1, {"k": b"0123456789"})
        with pytest.raises(TruncatedFrame):
            read_one(frame[:-3])

    def test_bad_magic_raises_frame_error(self):
        frame = bytearray(encode_frame(MSG_QUERY, 1, None))
        frame[:4] = b"HTTP"
        with pytest.raises(FrameError, match="magic"):
            read_one(bytes(frame))

    def test_version_mismatch_fails_fast_with_actionable_message(self):
        frame = bytearray(encode_frame(MSG_QUERY, 1, None))
        frame[4] = PROTOCOL_VERSION + 1
        with pytest.raises(VersionMismatch, match="upgrade"):
            read_one(bytes(frame))

    def test_corrupted_payload_raises_checksum_error(self):
        frame = bytearray(encode_frame(MSG_QUERY, 1, {"k": 123}))
        frame[-1] ^= 0xFF
        with pytest.raises(ChecksumError):
            read_one(bytes(frame))

    def test_absurd_declared_length_rejected_before_allocation(self):
        header = struct.Struct("<4sBBHQQI").pack(
            b"mLRn", PROTOCOL_VERSION, MSG_QUERY, 0, 1, 2**40,
            zlib.crc32(b"") & 0xFFFFFFFF,
        )
        with pytest.raises(FrameError, match="exceeds"):
            FrameReader(_StreamSock(header), max_payload=1 << 20).read_frame()

    def test_garbage_streams_raise_typed_errors(self):
        rng = np.random.default_rng(7)
        for _ in range(100):
            blob = rng.integers(0, 256, size=64, dtype=np.uint8).tobytes()
            with pytest.raises(ProtocolError):
                read_one(blob)

    def test_bitflip_anywhere_never_misparses_silently(self):
        """Flipping any single byte of a valid frame either still yields the
        exact original message (flags/unused bits) or raises typed."""
        body = {"op": "Fu1D", "key": np.arange(8, dtype=np.float32)}
        frame = encode_frame(MSG_QUERY, 9, body)
        for pos in range(len(frame)):
            mutated = bytearray(frame)
            mutated[pos] ^= 0x01
            try:
                _t, _r, out = read_one(bytes(mutated))
            except ProtocolError:
                continue
            np.testing.assert_array_equal(out["key"], body["key"])


class TestTypedMessages:
    def test_query_batch_roundtrip(self):
        qs = [ShardQuery("Fu1D", 3, np.arange(5, dtype=np.float32)),
              ShardQuery("Fu2D*", 0, np.ones(2, dtype=np.float32))]
        back = queries_from_wire(unpack_obj(pack_obj(queries_to_wire(qs))))
        assert [(q.op, q.location) for q in back] == [("Fu1D", 3), ("Fu2D*", 0)]
        np.testing.assert_array_equal(back[0].key, qs[0].key)

    def test_insert_batch_roundtrip_with_meta(self):
        ins = [ShardInsert("Fu1D", 1, np.ones(3, dtype=np.float32),
                           np.arange(4, dtype=np.complex64), meta=(1.5, 2 - 1j)),
               ShardInsert("Fu1D", 2, np.ones(3, dtype=np.float32),
                           np.zeros(4, dtype=np.complex64), meta=None)]
        back = inserts_from_wire(unpack_obj(pack_obj(inserts_to_wire(ins))))
        assert back[0].meta == (1.5, 2 - 1j)
        assert back[1].meta is None
        np.testing.assert_array_equal(back[0].value, ins[0].value)

    def test_outcome_roundtrip_hit_and_miss(self):
        hit = QueryOutcome(np.arange(6, dtype=np.complex64), 0.987, 4, 9,
                           stored_meta=(3.0, 1j))
        miss = QueryOutcome(None, -2.0, -1, 9)
        back = outcomes_from_wire(unpack_obj(pack_obj(outcomes_to_wire([hit, miss]))))
        assert back[0].hit and back[0].similarity == 0.987
        assert back[0].stored_meta == (3.0, 1j)
        np.testing.assert_array_equal(back[0].value, hit.value)
        assert not back[1].hit and back[1].matched_id == -1

    def test_stats_roundtrip(self):
        st = MemoDBStats(queries=10, hits=4, inserts=6, bytes_inserted=100,
                         bytes_fetched=40, query_batches=3, insert_batches=2)
        assert stats_from_wire(unpack_obj(pack_obj(stats_to_wire(st)))) == st

    def test_malformed_bodies_raise_message_error(self):
        with pytest.raises(MessageError):
            queries_from_wire([{"op": "Fu1D"}])  # missing key/location
        with pytest.raises(MessageError):
            queries_from_wire([{"op": "Fu1D", "location": 0, "key": "not-an-array"}])
        with pytest.raises(MessageError):
            outcomes_from_wire([{"similarity": 1.0}])
        with pytest.raises(MessageError):
            inserts_from_wire([{"op": "x", "location": 0, "key": np.ones(2),
                                "value": np.ones(2), "meta": {"bogus": 1}}])


class TestParseAddress:
    def test_forms(self):
        assert parse_address("host:123") == ("host", 123)
        assert parse_address(("h", 9)) == ("h", 9)
        assert parse_address(["h", 9]) == ("h", 9)
        assert parse_address(":123") == ("127.0.0.1", 123)

    @pytest.mark.parametrize(
        "bad", ["nohost", "h:port", 123, None, ("h",), "::1", "1:2:3", "[::1]:80"]
    )
    def test_rejects(self, bad):
        """Bare IPv6 literals and multi-colon strings fail fast instead of
        misparsing into a bogus (host, port); IPv6 goes in as a pair."""
        with pytest.raises(ValueError):
            parse_address(bad)
